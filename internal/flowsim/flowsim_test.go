package flowsim

import (
	"math"
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

func quickConfig(n int, cc CCConfig) Config {
	segs := workload.BytesPerFlowFor(10*netsim.Gbps, 15*sim.Millisecond, n) / netsim.MSS
	return Config{
		Flows:           n,
		SegmentsPerFlow: segs,
		Bursts:          4,
		CC:              cc,
		Check:           true,
	}
}

// TestModeClassification pins the fluid engine to the packet simulator's
// quick Fig-5 operating points: the three paper modes must classify
// identically and the headline levels must land within the differential
// tolerances (the audit harness pins the same contract cross-backend).
func TestModeClassification(t *testing.T) {
	cases := []struct {
		n       int
		mode    string
		busyAvg float64 // netsim quick golden busy-average queue
		meanBCT float64 // netsim quick golden mean BCT, ms
		busyTol float64 // relative
		bctTol  float64 // relative
	}{
		{80, "1 (healthy)", 89.822, 15.799, 0.30, 0.30},
		{500, "2 (degenerate)", 466.7, 15.404, 0.30, 0.30},
		{1400, "3 (timeouts)", 1097.1, 268.9, 0.35, 0.35},
	}
	for _, tc := range cases {
		res, err := Run(quickConfig(tc.n, CCConfig{}))
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if got := Classify(res.Timeouts, res.FracBelowK); got != tc.mode {
			t.Errorf("n=%d: mode %q, want %q (timeouts=%d fracBelowK=%.3f)",
				tc.n, got, tc.mode, res.Timeouts, res.FracBelowK)
		}
		var busySum float64
		var busyN int
		for _, v := range res.AvgQueue.Values {
			if v >= busyFloor {
				busySum += v
				busyN++
			}
		}
		if busyN == 0 {
			t.Fatalf("n=%d: no busy samples", tc.n)
		}
		busyAvg := busySum / float64(busyN)
		if rel := math.Abs(busyAvg-tc.busyAvg) / tc.busyAvg; rel > tc.busyTol {
			t.Errorf("n=%d: busy-average queue %.1f vs golden %.1f (rel %.2f > %.2f)",
				tc.n, busyAvg, tc.busyAvg, rel, tc.busyTol)
		}
		meanMS := float64(res.MeanBCT) / 1e6
		if rel := math.Abs(meanMS-tc.meanBCT) / tc.meanBCT; rel > tc.bctTol {
			t.Errorf("n=%d: mean BCT %.3f ms vs golden %.3f ms (rel %.2f > %.2f)",
				tc.n, meanMS, tc.meanBCT, rel, tc.bctTol)
		}
	}
}

// TestInvariantsAcrossLaws runs every reduced-form law with per-step
// checking enabled: queue bounds and volume conservation hold throughout,
// every burst completes, and the aggregate counters are sane.
func TestInvariantsAcrossLaws(t *testing.T) {
	laws := []struct {
		name string
		cc   CCConfig
	}{
		{"dctcp", CCConfig{}},
		{"reno", CCConfig{Kind: KindReno}},
		{"swift", CCConfig{Kind: KindSwift}},
		{"d2tcp", CCConfig{Kind: KindDCTCP, DeadlineFactor: 2}},
		{"guardrail", CCConfig{CapPkts: 3}},
	}
	for _, law := range laws {
		for _, n := range []int{40, 300, 1400} {
			res, err := Run(quickConfig(n, law.cc))
			if err != nil {
				t.Fatalf("%s n=%d: %v", law.name, n, err)
			}
			if res.MaxQueue > float64(res.QueueCapacity)+1e-6 {
				t.Errorf("%s n=%d: max queue %.1f beyond capacity %d", law.name, n, res.MaxQueue, res.QueueCapacity)
			}
			if len(res.BCTs) != 3 {
				t.Errorf("%s n=%d: %d measured BCTs, want 3", law.name, n, len(res.BCTs))
			}
			for _, b := range res.BCTs {
				if b <= 0 {
					t.Errorf("%s n=%d: non-positive BCT %v", law.name, n, b)
				}
			}
			if res.SentPackets < res.DeliveredPackets {
				t.Errorf("%s n=%d: sent %d < delivered %d", law.name, n, res.SentPackets, res.DeliveredPackets)
			}
			if res.Marks < 0 || res.Drops < 0 || res.Timeouts < 0 {
				t.Errorf("%s n=%d: negative counters %+v", law.name, n, res)
			}
			if res.CwndUpdates <= 0 {
				t.Errorf("%s n=%d: no controller updates recorded", law.name, n)
			}
		}
	}
}

// TestDeterminism pins that identical configurations reproduce identical
// results (the engine's only entropy is the seeded jitter RNG).
func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(quickConfig(700, CCConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanBCT != b.MeanBCT || a.MaxQueue != b.MaxQueue || a.Timeouts != b.Timeouts ||
		a.Marks != b.Marks || a.Steps != b.Steps || a.FracBelowK != b.FracBelowK {
		t.Errorf("repeat run diverged: %+v vs %+v", a, b)
	}
	for i := range a.AvgQueue.Values {
		if a.AvgQueue.Values[i] != b.AvgQueue.Values[i] {
			t.Fatalf("avg series diverged at sample %d", i)
		}
	}
}

func TestSeedChangesJitter(t *testing.T) {
	base := quickConfig(200, CCConfig{})
	other := base
	other.Seed = 7
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps == b.Steps && a.MeanBCT == b.MeanBCT && a.SpikePackets == b.SpikePackets {
		t.Error("different seeds produced byte-identical runs; jitter RNG not applied")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		timeouts   int64
		fracBelowK float64
		want       string
	}{
		{1, 0.5, "3 (timeouts)"},
		{0, 0.05, "2 (degenerate)"},
		{0, 0.10, "1 (healthy)"},
		{0, 0.9, "1 (healthy)"},
	}
	for _, tc := range cases {
		if got := Classify(tc.timeouts, tc.fracBelowK); got != tc.want {
			t.Errorf("Classify(%d, %.2f) = %q, want %q", tc.timeouts, tc.fracBelowK, got, tc.want)
		}
	}
}

// TestEffectivePacketRate pins the x1500/1538 wire-overhead contract shared
// with internal/audit.
func TestEffectivePacketRate(t *testing.T) {
	got := EffectivePacketRate(10 * netsim.Gbps)
	want := 10e9 / 8 / float64(netsim.MTU+netsim.EthernetOverhead)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("EffectivePacketRate(10G) = %.3f, want %.3f", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Flows: 0, SegmentsPerFlow: 1}); err == nil {
		t.Error("zero flows accepted")
	}
	if _, err := Run(Config{Flows: 1, SegmentsPerFlow: 0}); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := Run(Config{Flows: 1, SegmentsPerFlow: 1, JitterMax: sim.Second, Interval: sim.Millisecond}); err == nil {
		t.Error("jitter beyond interval accepted")
	}
}

// TestTraceConservation checks the open-loop queue trace: offered volume
// splits exactly into delivered + dropped + residual, watermarks stay in
// [0, 1], and marking only appears once the threshold is crossed.
func TestTraceConservation(t *testing.T) {
	res, err := RunTrace(TraceConfig{
		OfferedPackets: []int{100, 900, 2500, 0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered float64
	offered := 3500.0 * float64(netsim.MTU)
	for i := range res.Delivered {
		delivered += res.Delivered[i]
		if res.ECNBytes[i] > res.Delivered[i]+1e-6 {
			t.Errorf("interval %d: marked %.0f beyond delivered %.0f", i, res.ECNBytes[i], res.Delivered[i])
		}
		if res.Watermark[i] < 0 || res.Watermark[i] > 1+1e-9 {
			t.Errorf("interval %d: watermark %.3f outside [0,1]", i, res.Watermark[i])
		}
	}
	if res.ECNBytes[0] != 0 {
		t.Errorf("interval 0 marked %.0f bytes below threshold", res.ECNBytes[0])
	}
	if res.DroppedBytes <= 0 {
		t.Error("2500-packet interval should overflow the 1333-packet queue")
	}
	if math.Abs(delivered+res.DroppedBytes-offered) > 1 {
		t.Errorf("conservation: delivered %.0f + dropped %.0f != offered %.0f",
			delivered, res.DroppedBytes, offered)
	}
	if res.PeakWatermark != 1 {
		t.Errorf("peak watermark %.3f, want 1 (queue overflowed)", res.PeakWatermark)
	}
	if _, err := RunTrace(TraceConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := RunTrace(TraceConfig{OfferedPackets: []int{-1}}); err == nil {
		t.Error("negative offered accepted")
	}
}

// TestStalledFlowsRecover pins the Mode-3 machinery: a deep incast stalls
// flows on RTOs but every burst still completes, and the measured BCTs
// reflect at least one RTO worth of stall.
func TestStalledFlowsRecover(t *testing.T) {
	res, err := Run(quickConfig(1400, CCConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts == 0 {
		t.Fatal("1400-flow incast should stall flows")
	}
	if res.MeanBCT < 200*sim.Millisecond {
		t.Errorf("mean BCT %v below MinRTO; stalls not reflected in completion times", res.MeanBCT)
	}
	if res.RetransmitPackets <= 0 {
		t.Error("timeout-mode run recorded no retransmitted volume")
	}
}
