package flowsim

import "sync"

// netScratch recycles the multi-queue engine's per-run backing arrays
// through a process-wide sync.Pool, the same pattern internal/core's
// simResources applies to the packet engine: consecutive sweep points
// need exactly the same substrate, and rebuilding it cold is where a
// fluid sweep burns most of its allocation budget.
//
// Correctness: results are independent of pool warmth. Every reused
// slice is re-lengthened and cleared (or fully overwritten) before the
// integrator reads it, and nothing the engine returns aliases pooled
// memory — Result copies the sample series, BCTs, and per-flow end
// state into fresh slices. Each acquired bundle is owned by exactly one
// goroutine until released, so parallel sweeps stay race-free.
type netScratch struct {
	// Per-queue state and step scratch.
	q, drain, capQ, kQ, q0, served, sFrac, arrTotal, markNow, passFrac []float64
	transit                                                            []bool

	// Per-record state (grows past its initial length on cohort splits;
	// the grown capacity is what makes reuse pay).
	flows         []flowState
	hot           []netFlow
	off, lineNext []int32
	baseSec       []float64
	paths         [][]int32

	// Per-flow-hop flat arrays.
	bk, mk, arrH, arrMkH []float64

	// Run-loop lists.
	activeList, stalled []int32
}

var netScratchPool = sync.Pool{New: func() any { return new(netScratch) }}

// grown returns buf re-lengthened to n with every element zeroed,
// reusing its capacity when it suffices.
func grown[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// attach populates the engine's arrays from the recycled bundle and
// remembers it for release.
func (e *netEngine) attach(sc *netScratch, nq, m int, hops int32) {
	e.scratch = sc
	e.q = grown(sc.q, nq)
	e.drain = grown(sc.drain, nq)
	e.capQ = grown(sc.capQ, nq)
	e.kQ = grown(sc.kQ, nq)
	e.q0 = grown(sc.q0, nq)
	e.served = grown(sc.served, nq)
	e.sFrac = grown(sc.sFrac, nq)
	e.arrTotal = grown(sc.arrTotal, nq)
	e.markNow = grown(sc.markNow, nq)
	e.passFrac = grown(sc.passFrac, nq)
	e.transit = grown(sc.transit, nq)
	e.flows = grown(sc.flows, m)
	e.hot = grown(sc.hot, m)
	e.off = grown(sc.off, m)
	e.lineNext = grown(sc.lineNext, m)
	e.baseSec = grown(sc.baseSec, m)
	e.paths = grown(sc.paths, m)
	e.bk = grown(sc.bk, int(hops))
	e.mk = grown(sc.mk, int(hops))
	e.arrH = grown(sc.arrH, int(hops))
	e.arrMkH = grown(sc.arrMkH, int(hops))
	e.activeList = grown(sc.activeList, 0)
	e.stalled = grown(sc.stalled, 0)
}

// release hands the (possibly split-grown) backing arrays back to the
// pool. Only call it once the run's Result has been assembled — nothing
// may alias the arrays afterwards.
func (e *netEngine) release() {
	sc := e.scratch
	if sc == nil {
		return
	}
	e.scratch = nil
	sc.q, sc.drain, sc.capQ, sc.kQ = e.q, e.drain, e.capQ, e.kQ
	sc.q0, sc.served, sc.sFrac = e.q0, e.served, e.sFrac
	sc.arrTotal, sc.markNow, sc.passFrac = e.arrTotal, e.markNow, e.passFrac
	sc.transit = e.transit
	sc.flows, sc.hot = e.flows, e.hot
	sc.off, sc.lineNext, sc.baseSec = e.off, e.lineNext, e.baseSec
	// Drop the shared path headers so the pool does not pin a finished
	// run's FluidPaths backing until the bundle's next use.
	clear(e.paths)
	sc.paths = e.paths
	sc.bk, sc.mk, sc.arrH, sc.arrMkH = e.bk, e.mk, e.arrH, e.arrMkH
	sc.activeList, sc.stalled = e.activeList, e.stalled
	netScratchPool.Put(sc)
}
