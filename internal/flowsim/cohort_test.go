package flowsim

import (
	"math"
	"reflect"
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

// TestKnownAggregation pins the knob's vocabulary.
func TestKnownAggregation(t *testing.T) {
	for _, ok := range []string{"", AggregationAuto, AggregationCohort, AggregationPerFlow} {
		if !KnownAggregation(ok) {
			t.Errorf("KnownAggregation(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"flow", "cohorts", "none", "AUTO"} {
		if KnownAggregation(bad) {
			t.Errorf("KnownAggregation(%q) = true, want false", bad)
		}
	}
	cfg := quickConfig(8, CCConfig{})
	cfg.Aggregation = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatalf("Run accepted aggregation %q", cfg.Aggregation)
	}
}

// TestCohortSingletonByteIdentity is the property test for the degenerate
// instance: forcing one flow per cohort (cohort aggregation with at least
// as many jitter buckets as flows) must reproduce the per-flow engine's
// Result byte for byte — same jitter draws, same iteration order, same
// IEEE operations (weight 1 multiplications are exact).
func TestCohortSingletonByteIdentity(t *testing.T) {
	for _, n := range []int{33, 80} {
		for _, cc := range []CCConfig{{}, {Kind: KindSwift}} {
			cfg := quickConfig(n, cc)
			cfg.Aggregation = AggregationPerFlow
			want, err := Run(cfg)
			if err != nil {
				t.Fatalf("perflow n=%d: %v", n, err)
			}
			cfg.Aggregation = AggregationCohort
			cfg.cohortBuckets = n // one flow per cohort
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("singleton cohorts n=%d: %v", n, err)
			}
			// The only allowed difference is the bookkeeping echo.
			if got.Cohorts != n || got.CohortSplits != 0 || got.PeakCohortWeight != 1 {
				t.Fatalf("singleton cohorts n=%d: got %d cohorts, %d splits, peak %v",
					n, got.Cohorts, got.CohortSplits, got.PeakCohortWeight)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("singleton-cohort run diverged from perflow at n=%d kind=%v", n, cc.Kind)
			}
		}
	}
}

// TestCohortDefaultsAuto pins the auto threshold: small runs integrate
// per-flow (historical results bit-stable), large runs aggregate.
func TestCohortDefaultsAuto(t *testing.T) {
	small := quickConfig(80, CCConfig{})
	if small.cohortEnabled() {
		t.Errorf("auto aggregation enabled cohorts at %d flows", small.Flows)
	}
	big := quickConfig(80, CCConfig{})
	big.Flows = AutoCohortMinFlows
	if !big.cohortEnabled() {
		t.Errorf("auto aggregation kept per-flow at %d flows", big.Flows)
	}
}

// cohortVsPerFlow runs cfg both ways and returns (cohort, perflow).
func cohortVsPerFlow(t *testing.T, cfg Config) (*Result, *Result) {
	t.Helper()
	cfg.Aggregation = AggregationCohort
	co, err := Run(cfg)
	if err != nil {
		t.Fatalf("cohort run: %v", err)
	}
	cfg.Aggregation = AggregationPerFlow
	pf, err := Run(cfg)
	if err != nil {
		t.Fatalf("perflow run: %v", err)
	}
	return co, pf
}

// TestCohortMatchesPerFlowModes pins cohort aggregation to the per-flow
// engine on the quick Fig-5 operating points: identical mode
// classification and close headline statistics, with tail drops (the 1400
// point) exercising the lazy exact split. The audit harness pins the same
// contract through the public runner; this is the direct engine-level
// regression for the partial-tail-drop and RTO-parking split triggers.
func TestCohortMatchesPerFlowModes(t *testing.T) {
	for _, n := range []int{80, 500, 1400} {
		co, pf := cohortVsPerFlow(t, quickConfig(n, CCConfig{}))
		coMode := Classify(co.Timeouts, co.FracBelowK)
		pfMode := Classify(pf.Timeouts, pf.FracBelowK)
		if coMode != pfMode {
			t.Errorf("n=%d: cohort mode %s != perflow mode %s", n, coMode, pfMode)
		}
		if co.Cohorts < defaultCohortBuckets {
			t.Errorf("n=%d: only %d cohorts (want >= %d buckets)", n, co.Cohorts, defaultCohortBuckets)
		}
		if co.PeakCohortWeight < float64(n/defaultCohortBuckets) {
			t.Errorf("n=%d: peak cohort weight %v below the bucket size %d",
				n, co.PeakCohortWeight, n/defaultCohortBuckets)
		}
		relDiff := func(a, b float64) float64 {
			if b == 0 {
				return math.Abs(a)
			}
			return math.Abs(a-b) / b
		}
		if d := relDiff(float64(co.MeanBCT), float64(pf.MeanBCT)); d > 0.15 {
			t.Errorf("n=%d: mean BCT diff %.3f (cohort %v vs perflow %v)", n, d, co.MeanBCT, pf.MeanBCT)
		}
		if d := relDiff(co.MaxQueue, pf.MaxQueue); d > 0.15 {
			t.Errorf("n=%d: max queue diff %.3f (cohort %v vs perflow %v)", n, d, co.MaxQueue, pf.MaxQueue)
		}
		if (co.Timeouts > 0) != (pf.Timeouts > 0) {
			t.Errorf("n=%d: timeout presence diverged (cohort %d vs perflow %d)", n, co.Timeouts, pf.Timeouts)
		}
		if n == 1400 {
			// Mode 3: drops must have forced exact splits, and the RTO
			// parking/backoff machinery must have run per sub-cohort.
			if co.CohortSplits == 0 {
				t.Errorf("n=1400: tail drops produced no cohort splits")
			}
			if co.Timeouts == 0 || co.Drops == 0 {
				t.Errorf("n=1400: cohort run lost the Mode-3 signature (timeouts %d drops %d)",
					co.Timeouts, co.Drops)
			}
		}
		t.Logf("n=%d: mode=%s cohorts=%d splits=%d peak=%v | BCT %v vs %v | maxQ %.1f vs %.1f | TO %d vs %d | frac %.3f vs %.3f",
			n, coMode, co.Cohorts, co.CohortSplits, co.PeakCohortWeight,
			co.MeanBCT, pf.MeanBCT, co.MaxQueue, pf.MaxQueue, co.Timeouts, pf.Timeouts,
			co.FracBelowK, pf.FracBelowK)
	}
}

// TestCohortNetworkMatchesPerFlow runs the general multi-queue integrator
// with cohort aggregation on a two-rack Clos incast and pins it to the
// per-flow network engine: same mode, close statistics. Path classes
// (per-spine ECMP choice) partition the cohorts here.
func TestCohortNetworkMatchesPerFlow(t *testing.T) {
	clos := netsim.DefaultClosConfig(2, 256)
	n := 300
	srcs := make([]netsim.NodeID, n)
	dsts := make([]netsim.NodeID, n)
	for i := range srcs {
		srcs[i] = netsim.NodeID(256 + i%250) // senders in rack 1
		dsts[i] = 0                          // aggregator in rack 0
	}
	net, err := clos.FluidPaths(srcs, dsts)
	if err != nil {
		t.Fatalf("FluidPaths: %v", err)
	}
	base := quickConfig(n, CCConfig{})
	run := func(agg string) *Result {
		cfg := base
		cfg.Aggregation = agg
		res, err := RunNetwork(NetworkConfig{Config: cfg, Net: net})
		if err != nil {
			t.Fatalf("RunNetwork(%s): %v", agg, err)
		}
		return res
	}
	co := run(AggregationCohort)
	pf := run(AggregationPerFlow)
	if pf.Cohorts != n || pf.PeakCohortWeight != 1 {
		t.Errorf("perflow network run reported %d cohorts peak %v", pf.Cohorts, pf.PeakCohortWeight)
	}
	coMode := Classify(co.Timeouts, co.FracBelowK)
	pfMode := Classify(pf.Timeouts, pf.FracBelowK)
	if coMode != pfMode {
		t.Errorf("cohort mode %s != perflow mode %s", coMode, pfMode)
	}
	if d := math.Abs(float64(co.MeanBCT)-float64(pf.MeanBCT)) / float64(pf.MeanBCT); d > 0.15 {
		t.Errorf("mean BCT diff %.3f (cohort %v vs perflow %v)", d, co.MeanBCT, pf.MeanBCT)
	}
	t.Logf("clos: mode=%s cohorts=%d splits=%d peak=%v | BCT %v vs %v | maxQ %.1f vs %.1f | TO %d vs %d",
		coMode, co.Cohorts, co.CohortSplits, co.PeakCohortWeight,
		co.MeanBCT, pf.MeanBCT, co.MaxQueue, pf.MaxQueue, co.Timeouts, pf.Timeouts)
}

// millionFlowNet builds the million-flow Clos workload: aggs aggregators
// spread round-robin across the racks, each fanning in perAgg flows from
// senders on the other racks — the multi-aggregator geometry whose
// per-downlink incast degree stays in the regime the paper studies while
// the total flow count crosses a million.
func millionFlowNet(t testing.TB, clos netsim.ClosConfig, aggs, perAgg int) (*netsim.FluidPaths, int) {
	t.Helper()
	n := aggs * perAgg
	srcs := make([]netsim.NodeID, 0, n)
	dsts := make([]netsim.NodeID, 0, n)
	hosts := clos.Hosts()
	for a := 0; a < aggs; a++ {
		// Round-robin aggregators across racks so no single rack's spine
		// ingress has to carry every aggregator's downlink demand.
		dst := clos.HostID(a%clos.Racks, (a/clos.Racks)%clos.HostsPerRack)
		dstRack := clos.RackOf(dst)
		// Senders cycle over the other racks' hosts.
		src := (dstRack + 1) * clos.HostsPerRack % hosts
		for f := 0; f < perAgg; f++ {
			for clos.RackOf(netsim.NodeID(src)) == dstRack || netsim.NodeID(src) == dst {
				src = (src + 1) % hosts
			}
			srcs = append(srcs, netsim.NodeID(src))
			dsts = append(dsts, dst)
			src = (src + 1) % hosts
		}
	}
	net, err := clos.FluidPaths(srcs, dsts)
	if err != nil {
		t.Fatalf("FluidPaths: %v", err)
	}
	return net, n
}

// TestCohortMillionFlowSmoke is the headline scale check: a million-flow
// multi-aggregator Clos incast integrates in ONE run — impossible
// per-flow, where the release schedule alone would blow the release-key
// packing limit — and conserves volume (Check is on).
func TestCohortMillionFlowSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow smoke is not a -short test")
	}
	clos := netsim.DefaultClosConfig(8, 4096)
	// 64 aggregators per rack pull 640 Gbps of downlink demand through the
	// rack's spine ingress: 2x400G keeps the fabric non-oversubscribed so
	// each aggregator's downlink port stays the bottleneck under study.
	clos.SpineLinkBps = 400 * netsim.Gbps
	const aggs, perAgg = 512, 2048 // 1,048,576 flows
	net, n := millionFlowNet(t, clos, aggs, perAgg)
	segs := workload.BytesPerFlowFor(clos.HostLinkBps, 15*sim.Millisecond, perAgg) / netsim.MSS
	if segs < 1 {
		segs = 1
	}
	cfg := Config{
		Flows:           n,
		SegmentsPerFlow: segs,
		Bursts:          2,
		// Perfectly synchronized release livelocks this fluid model: every
		// straggler retries on the identical deterministic RTO schedule and
		// re-collides forever. Real senders desynchronize; the jitter spread
		// is the workload's model of that.
		JitterMax: 5 * sim.Millisecond,
		Check:     true,
	}
	res, err := RunNetwork(NetworkConfig{Config: cfg, Net: net})
	if err != nil {
		t.Fatalf("million-flow run: %v", err)
	}
	if res.Flows != n || res.Cohorts < defaultCohortBuckets {
		t.Fatalf("million-flow run: flows %d cohorts %d", res.Flows, res.Cohorts)
	}
	t.Logf("1M flows: mode=%s cohorts=%d splits=%d peak=%v steps=%d meanBCT=%v",
		Classify(res.Timeouts, res.FracBelowK), res.Cohorts, res.CohortSplits,
		res.PeakCohortWeight, res.Steps, res.MeanBCT)
}

// TestPerFlowReleasePackingLimit pins that per-flow integration still
// refuses flow counts past the release-key packing limit — the cohort
// path is the supported way to exceed it.
func TestPerFlowReleasePackingLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("buildReleases accepted %d per-flow units", 1<<20)
		}
	}()
	cfg := quickConfig(8, CCConfig{})
	buildReleases(cfg, 1<<20)
}
