package flowsim

import (
	"math"
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// runGeneral forces a config through the general multi-queue integrator
// even when it is the trivial one-queue instance RunNetwork would
// delegate, so tests can compare the two solvers directly.
func runGeneral(t *testing.T, cfg Config) *Result {
	t.Helper()
	ncfg, err := SingleQueue(cfg)
	if err != nil {
		t.Fatalf("SingleQueue: %v", err)
	}
	if err := ncfg.prepare(); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	e := newNetEngine(ncfg, singletonPlan(ncfg.Flows))
	if err := e.run(); err != nil {
		t.Fatalf("netEngine run: %v", err)
	}
	res, err := e.finish()
	if err != nil {
		t.Fatalf("netEngine finish: %v", err)
	}
	return res
}

// TestRunNetworkTrivialDelegates pins the "dumbbell as trivial one-queue
// instance" contract: RunNetwork on the SingleQueue wrapping of a config
// returns byte-identical results to Run, because it IS Run.
func TestRunNetworkTrivialDelegates(t *testing.T) {
	cfg := quickConfig(80, CCConfig{})
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ncfg, err := SingleQueue(cfg)
	if err != nil {
		t.Fatalf("SingleQueue: %v", err)
	}
	if !ncfg.trivial() {
		t.Fatalf("SingleQueue config not detected as the trivial instance")
	}
	got, err := RunNetwork(ncfg)
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if got.Steps != want.Steps || got.MeanBCT != want.MeanBCT || got.MaxQueue != want.MaxQueue ||
		got.Timeouts != want.Timeouts || got.FracBelowK != want.FracBelowK ||
		got.SentPackets != want.SentPackets || got.DeliveredPackets != want.DeliveredPackets {
		t.Errorf("trivial RunNetwork diverged from Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestNetworkSingleQueueEquivalence runs the general integrator on the
// one-queue dumbbell and compares it to the optimized single-queue engine
// at the three quick Fig-5 operating points: the paper's mode
// classification must be identical and the headline levels must agree
// within the pinned tolerances. The engines are not bit-equal — the
// general integrator drains a stalled flow's in-network residue under its
// own name instead of the single-queue orphan bucket, and sizes steps
// from per-flow RTTs — so the tolerances bound the real modeling gap.
func TestNetworkSingleQueueEquivalence(t *testing.T) {
	for _, n := range []int{80, 500, 1400} {
		cfg := quickConfig(n, CCConfig{})
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("n=%d Run: %v", n, err)
		}
		got := runGeneral(t, cfg)
		if wm, gm := Classify(want.Timeouts, want.FracBelowK), Classify(got.Timeouts, got.FracBelowK); wm != gm {
			t.Errorf("n=%d: mode %q (general) vs %q (single-queue)", n, gm, wm)
		}
		relBCT := math.Abs(float64(got.MeanBCT-want.MeanBCT)) / float64(want.MeanBCT)
		if relBCT > 0.10 {
			t.Errorf("n=%d: mean BCT %.3f ms (general) vs %.3f ms (single-queue), rel %.3f > 0.10",
				n, float64(got.MeanBCT)/1e6, float64(want.MeanBCT)/1e6, relBCT)
		}
		if want.MaxQueue > 0 {
			relQ := math.Abs(got.MaxQueue-want.MaxQueue) / want.MaxQueue
			if relQ > 0.10 {
				t.Errorf("n=%d: max queue %.1f (general) vs %.1f (single-queue), rel %.3f > 0.10",
					n, got.MaxQueue, want.MaxQueue, relQ)
			}
		}
		if diff := math.Abs(got.FracBelowK - want.FracBelowK); diff > 0.05 {
			t.Errorf("n=%d: FracBelowK %.3f (general) vs %.3f (single-queue), diff %.3f > 0.05",
				n, got.FracBelowK, want.FracBelowK, diff)
		}
	}
}

// closQuickConfig builds a NetworkConfig for an n-flow cross-rack incast
// on the default two-spine fabric, the fluid mirror of
// workload.ClosIncast's cross-rack placement.
func closQuickConfig(t *testing.T, n int, placementCross bool) NetworkConfig {
	t.Helper()
	cc := netsim.DefaultClosConfig(8, 501)
	srcs := make([]netsim.NodeID, n)
	dsts := make([]netsim.NodeID, n)
	for i := range srcs {
		if placementCross {
			srcs[i] = cc.HostID(1+i%(cc.Racks-1), i/(cc.Racks-1))
		} else {
			srcs[i] = cc.HostID(0, i+1)
		}
		dsts[i] = 0
	}
	net, err := cc.FluidPaths(srcs, dsts)
	if err != nil {
		t.Fatalf("FluidPaths: %v", err)
	}
	cfg := quickConfig(n, CCConfig{})
	cfg.BaseRTT = cc.BaseRTT(placementCross)
	return NetworkConfig{Config: cfg, Net: net}
}

// TestNetworkClosCrossRack smoke-tests the multi-queue integrator on the
// real fabric geometry with per-step invariant checking on: every burst
// completes, conservation holds at every checkpoint, and the bottleneck
// statistics land in the mode the packet backend sees for the same
// operating point (Mode 1 at 80 flows, Mode 2 at 500).
func TestNetworkClosCrossRack(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mode string
	}{
		{80, "1 (healthy)"},
		{500, "2 (degenerate)"},
	} {
		res, err := RunNetwork(closQuickConfig(t, tc.n, true))
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if got := Classify(res.Timeouts, res.FracBelowK); got != tc.mode {
			t.Errorf("n=%d: mode %q, want %q (timeouts=%d fracBelowK=%.3f)",
				tc.n, got, tc.mode, res.Timeouts, res.FracBelowK)
		}
		if res.DeliveredPackets <= 0 || res.MeanBCT <= 0 {
			t.Errorf("n=%d: degenerate result: delivered=%d meanBCT=%v",
				tc.n, res.DeliveredPackets, res.MeanBCT)
		}
	}
}

// TestNetworkSameRackMatchesDumbbell pins the Clos same-rack placement to
// the dumbbell: a same-rack incast's only queue is the aggregator's leaf
// downlink, so RunNetwork detects the trivial instance and delegates to
// the single-queue engine, reproducing Run exactly.
func TestNetworkSameRackMatchesDumbbell(t *testing.T) {
	ncfg := closQuickConfig(t, 80, false)
	if err := ncfg.prepare(); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if !ncfg.trivial() {
		t.Fatalf("same-rack Clos incast not detected as the trivial one-queue instance")
	}
	got, err := RunNetwork(ncfg)
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	want, err := Run(ncfg.Config)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Steps != want.Steps || got.MeanBCT != want.MeanBCT || got.Timeouts != want.Timeouts {
		t.Errorf("same-rack RunNetwork diverged from Run: steps %d vs %d, meanBCT %v vs %v",
			got.Steps, want.Steps, got.MeanBCT, want.MeanBCT)
	}
}

// TestNetworkValidation covers RunNetwork's input contract: a nil
// network, mismatched flow counts, and structurally invalid path sets all
// fail with named errors instead of running.
func TestNetworkValidation(t *testing.T) {
	cfg := quickConfig(4, CCConfig{})
	if _, err := RunNetwork(NetworkConfig{Config: cfg}); err == nil {
		t.Error("nil network accepted")
	}
	ncfg, err := SingleQueue(cfg)
	if err != nil {
		t.Fatalf("SingleQueue: %v", err)
	}
	ncfg.Flows = 5
	if _, err := RunNetwork(ncfg); err == nil {
		t.Error("flow/path count mismatch accepted")
	}
	bad := &netsim.FluidPaths{
		Queues:  []netsim.FluidQueue{{Name: "x", RateBps: 0, CapacityPackets: 1, ECNThresholdPackets: 1}},
		Paths:   [][]int32{{0}},
		BaseRTT: []sim.Time{sim.Millisecond},
		Stage:   []int{0},
	}
	if _, err := RunNetwork(NetworkConfig{Config: quickConfig(1, CCConfig{}), Net: bad}); err == nil {
		t.Error("zero-rate queue accepted")
	}
}
