package flowsim

import (
	"strings"
	"testing"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/workload"
)

// TestNetworkZeroFlows: an empty workload is a configuration error, not a
// silent no-op — the network solver must refuse it like Run does.
func TestNetworkZeroFlows(t *testing.T) {
	net := &netsim.FluidPaths{
		Queues: []netsim.FluidQueue{{
			Name: "bottleneck", RateBps: 10 * netsim.Gbps,
			CapacityPackets: 100, ECNThresholdPackets: 20,
		}},
		Paths:   nil,
		BaseRTT: nil,
		Stage:   []int{0},
	}
	_, err := RunNetwork(NetworkConfig{
		Config: Config{Flows: 0, SegmentsPerFlow: 10},
		Net:    net,
	})
	if err == nil {
		t.Fatal("zero-flow network run accepted")
	}
	if !strings.Contains(err.Error(), "flow") {
		t.Errorf("zero-flow error %q does not mention flows", err)
	}
}

// TestNetworkDegreeOneIncast: a single cross-rack flow has the fabric to
// itself — its host NIC and the aggregator downlink run at the same rate,
// so nothing queues, nothing marks, nothing drops, and every burst
// completes in roughly the serialization time.
func TestNetworkDegreeOneIncast(t *testing.T) {
	cc := netsim.DefaultClosConfig(2, 2)
	cc.ECMPSeed = 1
	srcs, dsts, err := workload.ClosFlowEndpoints(cc, 1, 1, workload.PlacementCrossRack)
	if err != nil {
		t.Fatalf("endpoints: %v", err)
	}
	net, err := cc.FluidPaths(srcs, dsts)
	if err != nil {
		t.Fatalf("FluidPaths: %v", err)
	}
	if len(net.Paths) != 1 || len(net.Paths[0]) != 3 {
		t.Fatalf("degree-1 cross-rack path = %v, want one three-hop path", net.Paths)
	}
	segs := workload.BytesPerFlowFor(cc.HostLinkBps, 15*sim.Millisecond, 1) / netsim.MSS
	res, err := RunNetwork(NetworkConfig{
		Config: Config{
			Flows:           1,
			SegmentsPerFlow: segs,
			Bursts:          3,
			LineRateBps:     cc.HostLinkBps,
			CoreRateBps:     cc.SpineLinkBps,
			Check:           true,
		},
		Net: net,
	})
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if res.Timeouts != 0 || res.Drops != 0 {
		t.Errorf("degree-1 incast lost traffic: timeouts %d, drops %d", res.Timeouts, res.Drops)
	}
	if res.Marks != 0 {
		t.Errorf("degree-1 incast marked %d packets; one flow at line rate should never queue past K", res.Marks)
	}
	ideal := 15 * sim.Millisecond
	if res.MeanBCT < ideal || res.MeanBCT > 2*ideal {
		t.Errorf("degree-1 mean BCT %v outside [%v, %v]", res.MeanBCT, ideal, 2*ideal)
	}
}

// TestNetworkRTOBackoffAtStepBoundary drives the multi-queue engine into
// Mode 3 with the integration step pinned (MinStep == MaxStep) and the
// RTO floor an exact multiple of it, so every stall deadline lands
// exactly on a step end. The wake test is stallT <= now; an off-by-one
// in either direction strands the stalled flows and the run times out at
// the horizon instead of completing.
func TestNetworkRTOBackoffAtStepBoundary(t *testing.T) {
	const step = 100 * sim.Microsecond
	net := &netsim.FluidPaths{
		Queues: []netsim.FluidQueue{
			{Name: "uplink", RateBps: 10 * netsim.Gbps, CapacityPackets: 1000, ECNThresholdPackets: 65},
			{Name: "downlink", RateBps: netsim.Gbps, CapacityPackets: 12, ECNThresholdPackets: 5},
		},
		Paths:      [][]int32{{0, 1}, {0, 1}, {0, 1}, {0, 1}},
		BaseRTT:    []sim.Time{20 * sim.Microsecond, 20 * sim.Microsecond, 20 * sim.Microsecond, 20 * sim.Microsecond},
		Stage:      []int{0, 1},
		Bottleneck: 1,
	}
	res, err := RunNetwork(NetworkConfig{
		Config: Config{
			Flows:           4,
			SegmentsPerFlow: 200,
			Bursts:          2,
			Interval:        50 * sim.Millisecond,
			MinRTO:          10 * step, // exactly 10 pinned steps
			MaxRTO:          80 * step, // caps the doubling at 8 steps' worth x8
			DupAckPackets:   1 << 20,   // every loss is timeout-class: pure Mode 3
			MinStep:         step,
			MaxStep:         step,
			LineRateBps:     10 * netsim.Gbps,
			Check:           true,
		},
		Net: net,
	})
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if res.Timeouts == 0 {
		t.Fatal("12-packet bottleneck under a 4-flow incast produced no timeouts")
	}
	if got := Classify(res.Timeouts, res.FracBelowK); got != "3 (timeouts)" {
		t.Errorf("mode = %q, want Mode 3 (timeouts %d, fracBelowK %.3f)",
			got, res.Timeouts, res.FracBelowK)
	}
}
