package flowsim

import (
	"fmt"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
)

// TraceConfig drives the fluid queue open-loop for the differential
// harness: a per-interval offered-packet trace evolves the bottleneck in
// fixed sub-steps using the same serve/mark/overflow arithmetic as the
// closed-loop engine, producing the per-interval curves that
// internal/audit compares against rackmodel and netsim.
type TraceConfig struct {
	// OfferedPackets is the number of MTU packets offered per interval,
	// arriving uniformly within it.
	OfferedPackets []int
	// Interval is the trace interval width (default 1 ms).
	Interval sim.Time
	// LineRateBps is the bottleneck line rate (default 10 Gbps); drains
	// apply the x1500/1538 effective-rate contract.
	LineRateBps int64
	// QueueCapacityPackets and ECNThresholdPackets describe the port
	// (defaults 1333 and 65).
	QueueCapacityPackets int
	ECNThresholdPackets  int
	// SubSteps is the number of fluid sub-steps per interval (default 20,
	// i.e. 50 us at the millisampler granularity).
	SubSteps int
}

// TraceResult carries per-interval curves in the units the differential
// harness compares: IP bytes for volumes, fractions of capacity for
// watermarks.
type TraceResult struct {
	// Delivered and ECNBytes are per-interval delivered and marked volumes
	// in IP bytes.
	Delivered []float64
	ECNBytes  []float64
	// Watermark is the within-interval queue peak as a fraction of
	// capacity; PeakWatermark is its maximum over the trace.
	Watermark     []float64
	PeakWatermark float64
	// DroppedBytes is the whole-trace overflow volume in IP bytes.
	DroppedBytes float64
}

// RunTrace evolves the queue over the offered trace. Dropped volume is not
// re-offered (matching the open-loop packet harness, which has no
// transport to retransmit).
func RunTrace(cfg TraceConfig) (*TraceResult, error) {
	if len(cfg.OfferedPackets) == 0 {
		return nil, fmt.Errorf("flowsim: trace needs at least one interval")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Millisecond
	}
	if cfg.LineRateBps <= 0 {
		cfg.LineRateBps = 10 * netsim.Gbps
	}
	if cfg.QueueCapacityPackets <= 0 {
		cfg.QueueCapacityPackets = netsim.DefaultDumbbellConfig(1).QueueCapacityPackets
	}
	if cfg.ECNThresholdPackets <= 0 {
		cfg.ECNThresholdPackets = netsim.DefaultDumbbellConfig(1).ECNThresholdPackets
	}
	if cfg.SubSteps <= 0 {
		cfg.SubSteps = 20
	}

	n := len(cfg.OfferedPackets)
	res := &TraceResult{
		Delivered: make([]float64, n),
		ECNBytes:  make([]float64, n),
		Watermark: make([]float64, n),
	}
	capPkts := float64(cfg.QueueCapacityPackets)
	kPkts := float64(cfg.ECNThresholdPackets)
	subSec := float64(cfg.Interval) / float64(sim.Second) / float64(cfg.SubSteps)
	drainPerSub := EffectivePacketRate(cfg.LineRateBps) * subSec

	var q float64
	for i, pkts := range cfg.OfferedPackets {
		if pkts < 0 {
			return nil, fmt.Errorf("flowsim: offered packets must be non-negative (interval %d has %d)", i, pkts)
		}
		arrPerSub := float64(pkts) / float64(cfg.SubSteps)
		peak := q
		var delivered, marked, dropped float64
		for s := 0; s < cfg.SubSteps; s++ {
			served, drop, mark, q1 := stepQueue(q, arrPerSub, drainPerSub, capPkts, kPkts)
			delivered += served
			marked += served * mark
			dropped += drop
			if q1 > peak {
				peak = q1
			}
			q = q1
		}
		res.Delivered[i] = delivered * float64(netsim.MTU)
		res.ECNBytes[i] = marked * float64(netsim.MTU)
		res.Watermark[i] = peak / capPkts
		if res.Watermark[i] > res.PeakWatermark {
			res.PeakWatermark = res.Watermark[i]
		}
		res.DroppedBytes += dropped * float64(netsim.MTU)
	}
	return res, nil
}

// stepQueue advances the bottleneck queue one fluid step: serve up to the
// drain allowance, admit arrivals up to capacity (tail-dropping the
// excess), and report the threshold-crossing mark fraction for the step's
// deliveries. Shared by the open-loop trace and mirrored by the
// closed-loop engine.
func stepQueue(q, arrive, drainCap, capPkts, kPkts float64) (served, dropped, markFrac, qEnd float64) {
	served = drainCap
	if served > q+arrive {
		served = q + arrive
	}
	markFrac = markFraction(q, q+arrive-drainCap, kPkts)
	qEnd = q + arrive - served
	if qEnd > capPkts {
		dropped = qEnd - capPkts
		qEnd = capPkts
	}
	return served, dropped, markFrac, qEnd
}

// markFraction returns the fraction of a step during which a linearly
// evolving queue (from q0 along the uncapped slope to q1) exceeds thresh,
// mirroring internal/rackmodel's crossing arithmetic.
func markFraction(q0, q1, thresh float64) float64 {
	lo, hi := q0, q1
	if lo > hi {
		lo, hi = hi, lo
	}
	switch {
	case hi <= thresh:
		return 0
	case lo >= thresh:
		return 1
	default:
		return (hi - thresh) / (hi - lo)
	}
}
