package flowsim

import (
	"fmt"
	"math"

	"incastlab/internal/netsim"
	"incastlab/internal/sim"
	"incastlab/internal/stats"
)

// This file generalizes the fluid engine from one hardcoded bottleneck to
// a queue network: every flow traverses an ordered list of port queues
// (netsim.FluidPaths — the backend-neutral path model the packet Clos
// builder shares), each queue integrates its own backlog, ECN marking,
// and tail drops per step, and flows are coupled through min-rate
// allocation along their paths — a flow's throughput is implicitly the
// minimum of its per-hop pro-rata service rates, because any hop serving
// slower than the hops upstream accumulates the flow's backlog and
// throttles what reaches the hops downstream.
//
// The single-queue dumbbell is the trivial one-queue instance: RunNetwork
// delegates it to the optimized single-queue engine (Run), and the
// general integrator reproduces that engine's per-step dynamics exactly
// at the final hop (serve-then-admit ordering, rackmodel-style mark
// fractions, newest-release-first tail drops, RTO stalls), so the two
// solvers agree on the paper's mode taxonomy by construction
// (TestNetworkSingleQueueEquivalence pins it).
//
// Transit hops (leaf uplinks, spine downlinks — every queue that is never
// a path's terminal) additionally cut through: arrivals that fit in the
// hop's spare service this step are forwarded immediately instead of
// waiting a step, so an idle 100G fabric hop adds (near) zero latency and
// the effective RTT of a cross-rack flow stays at its base RTT plus real
// queueing. The terminal hop never cuts through, keeping the one-queue
// instance's serve-then-admit contract intact.

// NetworkConfig describes one fluid run over a queue network. The
// embedded Config supplies the workload (flows, demand, bursts, jitter,
// seed), transport (RTO bounds, dup-ACK threshold, CC law), and
// integration knobs; its single-bottleneck fields (LineRateBps as the
// host NIC injection cap aside) are superseded by the per-queue rates and
// bounds in Net. Config.BaseRTT seeds the CC defaults (Swift's target
// delay); per-flow base RTTs come from Net.BaseRTT.
type NetworkConfig struct {
	Config

	// Net is the queue network and per-flow path assignment, typically
	// built by netsim.ClosConfig.FluidPaths so the ECMP spine choice
	// matches the packet backend flow for flow.
	Net *netsim.FluidPaths
}

// RunNetwork executes the fluid simulation over the queue network. The
// trivial one-queue instance (every path the same single queue at the
// host line rate, one base RTT) delegates to the optimized single-queue
// engine; everything else runs the general multi-queue integrator.
func RunNetwork(cfg NetworkConfig) (*Result, error) {
	if err := cfg.prepare(); err != nil {
		return nil, err
	}
	if cfg.trivial() {
		return Run(cfg.Config)
	}
	// Cohort equivalence over a network is the path partition: the workload
	// fields are uniform across flows, so (ordered queue path incl. the
	// ECMP spine choice, base RTT) is the only behavioral discriminant.
	var plan cohortPlan
	if cfg.cohortEnabled() {
		classOf, nClasses := cfg.Net.PathClasses()
		plan = buildPlan(&cfg.Config, classOf, nClasses)
	} else {
		plan = singletonPlan(cfg.Flows)
	}
	e := newNetEngine(cfg, plan)
	defer e.release()
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.finish()
}

// prepare validates the network, checks it against the workload, and
// folds the bottleneck queue's parameters into the embedded Config so
// sampling, classification, and the Result echo describe the queue under
// study.
func (cfg *NetworkConfig) prepare() error {
	if cfg.Net == nil {
		return fmt.Errorf("flowsim: network run needs a queue network (NetworkConfig.Net)")
	}
	if err := cfg.Net.Validate(); err != nil {
		return err
	}
	if cfg.Flows != len(cfg.Net.Paths) {
		return fmt.Errorf("flowsim: %d flows but %d network paths", cfg.Flows, len(cfg.Net.Paths))
	}
	b := cfg.Net.Queues[cfg.Net.Bottleneck]
	cfg.QueueCapacityPackets = b.CapacityPackets
	cfg.ECNThresholdPackets = b.ECNThresholdPackets
	if cfg.BaseRTT <= 0 {
		// Default the CC base RTT to the slowest path's, the conservative
		// choice for Swift's target delay.
		for _, rtt := range cfg.Net.BaseRTT {
			if rtt > cfg.BaseRTT {
				cfg.BaseRTT = rtt
			}
		}
	}
	return cfg.fill()
}

// trivial reports whether the network is the one-queue dumbbell instance
// the single-queue engine already solves: a single queue at the host line
// rate that every flow traverses alone, with one shared base RTT.
func (cfg *NetworkConfig) trivial() bool {
	n := cfg.Net
	if len(n.Queues) != 1 || n.Queues[0].RateBps != cfg.LineRateBps {
		return false
	}
	for i, p := range n.Paths {
		if len(p) != 1 || p[0] != 0 || n.BaseRTT[i] != cfg.BaseRTT {
			return false
		}
	}
	return true
}

// SingleQueue wraps a single-bottleneck Config as its equivalent
// one-queue network, for callers and tests that want the general solver's
// view of the dumbbell.
func SingleQueue(cfg Config) (NetworkConfig, error) {
	if err := cfg.fill(); err != nil {
		return NetworkConfig{}, err
	}
	net := &netsim.FluidPaths{
		Queues: []netsim.FluidQueue{{
			Name:                "bottleneck",
			RateBps:             cfg.LineRateBps,
			CapacityPackets:     cfg.QueueCapacityPackets,
			ECNThresholdPackets: cfg.ECNThresholdPackets,
		}},
		Paths:   make([][]int32, cfg.Flows),
		BaseRTT: make([]sim.Time, cfg.Flows),
		Stage:   []int{0},
	}
	for i := range net.Paths {
		net.Paths[i] = []int32{0}
		net.BaseRTT[i] = cfg.BaseRTT
	}
	return NetworkConfig{Config: cfg, Net: net}, nil
}

// netFlow is the per-flow state the network integrator's per-step passes
// touch: unsent demand, the ACK pipe, the cached window, observation-round
// tallies, and per-step scratch (injection offer, final-hop delivery and
// its marked share, current RTT). Per-hop backlogs live in the engine's
// flat arrays, indexed by the flow's hop offset.
type netFlow struct {
	unsent    float64
	ackPipe   float64
	win       float64
	roundDel  float64
	roundMark float64
	inject    float64
	deliv     float64
	delivMark float64
	rttSec    float64
	stallT    sim.Time
	reduced   bool
}

// netEngine integrates the multi-queue fluid state. Its run loop mirrors
// the single-queue engine's (releases, measured-window snapshot, RTO
// wakes, adaptive steps); the step itself walks queues in topological
// stage order so volume forwarded out of one hop is accounted at the next
// within the same step.
type netEngine struct {
	cfg   Config
	net   *netsim.FluidPaths
	flows []flowState
	hot   []netFlow

	// Cohort bookkeeping, exactly as in the single-queue engine (see
	// cohort.go): record i stands for mCnt[i] identical flows (member IDs
	// perm[mOff[i]:mOff[i]+mCnt[i]]); all per-record flow state is PER
	// MEMBER and aggregate couplings at queue boundaries scale by the
	// count. paths[i] is the record's shared ordered queue path (every
	// member of a path class traverses the same queues by construction).
	// lineNext threads split descendants into each original record's
	// lineage chain (-1 terminated).
	perm       []int32
	mOff, mCnt []int32
	lineNext   []int32
	paths      [][]int32
	// releasedFlows counts flow releases by weight (== relPtr when every
	// record is a singleton).
	releasedFlows float64
	cohorts0      int
	splitsMade    int64
	peakW         float64

	// Per-queue state and per-step scratch, indexed by queue.
	q        []float64 // backlog in packets
	drain    []float64 // effective drain, packets/second
	capQ     []float64
	kQ       []float64
	transit  []bool // never a terminal hop: cut-through allowed
	q0       []float64
	served   []float64
	sFrac    []float64
	arrTotal []float64
	markNow  []float64
	passFrac []float64
	// byStage groups queue indices by topological level.
	byStage [][]int32

	// Per-flow-hop flat arrays: off[i]+h indexes flow i's hop h.
	off     []int32
	bk      []float64 // backlog attributed to the flow at the hop
	mk      []float64 // CE-marked share of that backlog
	arrH    []float64 // per-step arrivals into the hop
	arrMkH  []float64 // marked share of those arrivals
	baseSec []float64

	nicRate  float64 // per-sender injection cap, packets/second
	bneck    int
	segs     float64
	crumbEps float64

	now sim.Time

	releases []release
	relPtr   int

	stalled  []int32
	nextWake sim.Time

	activeList []int32

	cumDelivered float64
	burstsDone   int
	bcts         []sim.Time

	timeouts, fastRetx, retxPkts, drops, marks, sent float64
	baseTimeouts, baseFastRetx, baseRetxPkts         float64
	baseDrops, baseMarks, baseSent, baseDelivered    float64
	baseTaken                                        bool

	timeRounds bool
	steps      uint64

	smp sampler

	// scratch is the pooled backing-array bundle this run borrowed; see
	// netscratch.go.
	scratch *netScratch
}

func newNetEngine(cfg NetworkConfig, plan cohortPlan) *netEngine {
	n := cfg.Flows
	m := plan.cohorts()
	net := cfg.Net
	nq := len(net.Queues)
	e := &netEngine{
		cfg:        cfg.Config,
		net:        net,
		perm:       plan.perm,
		mOff:       plan.off,
		mCnt:       plan.cnt,
		cohorts0:   m,
		nicRate:    EffectivePacketRate(cfg.LineRateBps),
		bneck:      net.Bottleneck,
		segs:       float64(cfg.SegmentsPerFlow),
		crumbEps:   float64(n)*volEps*4 + 1e-9,
		nextWake:   math.MaxInt64,
		timeRounds: cfg.CC.Kind == KindSwift,
	}
	var totalHops int32
	for i := 0; i < m; i++ {
		totalHops += int32(len(net.Paths[plan.perm[plan.off[i]]]))
	}
	e.attach(netScratchPool.Get().(*netScratch), nq, m, totalHops)
	for j, qs := range net.Queues {
		e.drain[j] = EffectivePacketRate(qs.RateBps)
		e.capQ[j] = float64(qs.CapacityPackets)
		e.kQ[j] = float64(qs.ECNThresholdPackets)
		e.transit[j] = true
	}
	e.byStage = make([][]int32, net.Stages())
	for j, s := range net.Stage {
		e.byStage[s] = append(e.byStage[s], int32(j))
	}
	for _, p := range net.Paths {
		e.transit[p[len(p)-1]] = false
	}
	var hops int32
	for i := 0; i < m; i++ {
		// Every member of a record shares the representative's path and
		// base RTT: that's the class key.
		rep := plan.perm[plan.off[i]]
		e.paths[i] = net.Paths[rep]
		e.off[i] = hops
		hops += int32(len(e.paths[i]))
		e.baseSec[i] = float64(net.BaseRTT[rep]) / 1e9
	}
	for i := range e.flows {
		e.flows[i].ctrl = newController(cfg.CC)
		e.flows[i].lastLoss = math.MinInt64 / 2
		e.hot[i].win = e.flows[i].ctrl.window()
		e.lineNext[i] = -1
		if w := float64(e.mCnt[i]); w > e.peakW {
			e.peakW = w
		}
	}
	e.releases = buildReleases(cfg.Config, m)

	first := 1
	if cfg.Bursts == 1 {
		first = 0
	}
	e.smp = newSampler(cfg.Config, first)
	return e
}

func (e *netEngine) activate(i int32) {
	if !e.flows[i].active {
		e.flows[i].active = true
		e.activeList = append(e.activeList, i)
	}
}

// queued returns the aggregate volume across all queues.
func (e *netEngine) queued() float64 {
	var total float64
	for _, v := range e.q {
		total += v
	}
	return total
}

// run advances fluid steps until all demand is delivered or the horizon
// expires, mirroring the single-queue loop.
func (e *netEngine) run() error {
	cfg := e.cfg
	deadline := sim.Time(cfg.Bursts)*cfg.Interval + cfg.Horizon
	measuredStart := e.smp.measuredStart()
	totalDemand := float64(cfg.Flows) * e.segs * float64(cfg.Bursts)

	for e.now < deadline {
		// Each release record covers its unit's whole lineage: the original
		// record plus any split-off descendants.
		for e.relPtr < len(e.releases) && e.releases[e.relPtr].at <= e.now {
			r := e.releases[e.relPtr]
			for ci := r.flow; ci >= 0; ci = e.lineNext[ci] {
				e.hot[ci].unsent += e.segs
				e.flows[ci].lastRelease = r.at
				e.releasedFlows += float64(e.mCnt[ci])
				if e.hot[ci].stallT <= e.now {
					e.activate(ci)
				}
			}
			e.relPtr++
		}
		if !e.baseTaken && e.now >= measuredStart {
			e.baseTaken = true
			e.baseTimeouts, e.baseFastRetx, e.baseRetxPkts = e.timeouts, e.fastRetx, e.retxPkts
			e.baseDrops, e.baseMarks, e.baseSent = e.drops, e.marks, e.sent
			e.baseDelivered = e.cumDelivered
		}
		if e.relPtr == len(e.releases) && e.cumDelivered >= totalDemand-e.crumbEps-1e-6 &&
			e.queued() <= e.crumbEps && len(e.activeList) == 0 && len(e.stalled) == 0 {
			return nil
		}

		if len(e.stalled) > 0 && e.nextWake <= e.now {
			e.wakeDue()
			continue
		}

		next := deadline
		if e.relPtr < len(e.releases) && e.releases[e.relPtr].at < next {
			next = e.releases[e.relPtr].at
		}
		if len(e.stalled) > 0 && e.nextWake < next {
			next = e.nextWake
		}
		if !e.baseTaken && measuredStart > e.now && measuredStart < next {
			next = measuredStart
		}

		if len(e.activeList) == 0 && e.queued() <= e.crumbEps {
			for j := range e.q {
				e.q[j] = 0
			}
			if next <= e.now {
				return fmt.Errorf("flowsim: network run stuck at %v with no runnable flows", e.now)
			}
			e.smp.advance(next, 0)
			e.now = next
			continue
		}

		// Adaptive step sized from the bottleneck queue's RTT, exactly as
		// the single-queue engine sizes from its one queue: transit hops
		// are orders of magnitude faster and contribute delay only under
		// ECMP collisions, which the per-flow RTTs (pass A) still see.
		rttSec := e.minBase() + e.q[e.bneck]/e.drain[e.bneck]
		div := float64(stepDiv)
		if e.q[e.bneck] > stepDeepK*e.kQ[e.bneck] {
			div = stepDivDeep
		}
		dt := sim.Time(rttSec / div * 1e9)
		if dt < cfg.MinStep {
			dt = cfg.MinStep
		}
		if dt > cfg.MaxStep {
			dt = cfg.MaxStep
		}
		if e.now+dt > next && next-e.now >= cfg.MinStep {
			dt = next - e.now
		}
		if err := e.step(dt); err != nil {
			return err
		}
	}
	return fmt.Errorf("flowsim: %d-flow network run did not complete by %v (delivered %.0f of %.0f packets)",
		cfg.Flows, deadline, e.cumDelivered, totalDemand)
}

func (e *netEngine) minBase() float64 {
	min := e.baseSec[0]
	for _, b := range e.baseSec[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

// step advances the fluid state by dt: per-queue service from the
// start-of-step backlogs, per-flow injection offers, then a walk over the
// queues in topological stage order — marking, tail-dropping, admitting,
// and forwarding — and finally the per-flow round bookkeeping.
func (e *netEngine) step(dt sim.Time) error {
	e.steps++
	stepEnd := e.now + dt
	dtSec := float64(dt) / 1e9

	// Per-queue service from start-of-step state.
	for j := range e.q {
		q0 := e.q[j]
		served := e.drain[j] * dtSec
		if served > q0 {
			served = q0
		}
		e.q0[j] = q0
		e.served[j] = served
		if q0 > 0 && served > 0 {
			e.sFrac[j] = served / q0
		} else {
			e.sFrac[j] = 0
		}
		e.arrTotal[j] = 0
		e.markNow[j] = 0
		e.passFrac[j] = 0
	}

	// Pass A: per-flow RTT, ACK-pipe update, and injection offers into
	// each flow's first hop, mirroring the single-queue engine's pass 1
	// ordering: this step's terminal-hop departure — exactly predictable
	// as bk*sFrac, since drops only hit arrivals and terminal hops never
	// cut through — joins the ACK pipe and frees window headroom before
	// the injection offer is sized. The window paces at w/RTT capped at
	// the host NIC line rate and that headroom.
	maxSend := e.nicRate * dtSec
	for _, i := range e.activeList {
		h := &e.hot[i]
		o := e.off[i]
		path := e.paths[i]
		rtt := e.baseSec[i]
		var inNet float64
		for h2, j := range path {
			rtt += e.q0[j] / e.drain[j]
			inNet += e.bk[o+int32(h2)]
		}
		h.rttSec = rtt
		last := path[len(path)-1]
		dFinal := e.bk[o+int32(len(path)-1)] * e.sFrac[last]
		inNet -= dFinal
		ackDecay := dtSec / (e.baseSec[i] / 2)
		if ackDecay > 1 {
			ackDecay = 1
		}
		p := h.ackPipe + dFinal
		p -= p * ackDecay
		h.ackPipe = p

		var a float64
		if h.unsent > volEps && h.stallT <= e.now {
			w := h.win
			a = w * dtSec / rtt
			if a > maxSend {
				a = maxSend
			}
			if head := w - inNet - p; a > head {
				a = head
			}
			if a > h.unsent {
				a = h.unsent
			}
			if a < 0 {
				a = 0
			}
		}
		h.inject = a
		e.arrH[o] = a
		e.arrMkH[o] = 0
		e.arrTotal[path[0]] += a * float64(e.mCnt[i])
	}

	// Stage walk: queues finalize (mark fraction, tail drops, cut-through
	// share, backlog update) once their arrivals are complete — i.e. after
	// every earlier stage's flows have forwarded — then the flows with a
	// hop at this stage depart, admit, and forward.
	for s, queues := range e.byStage {
		for _, j := range queues {
			arr := e.arrTotal[j]
			// Mark fraction over the step, rackmodel-style, from the
			// pre-drop trajectory — mirroring the single-queue engine.
			e.markNow[j] = markFraction(e.q0[j], e.q0[j]+arr-e.drain[j]*dtSec, e.kQ[j])
			if overflow := e.q0[j] - e.served[j] + arr - e.capQ[j]; overflow > 0 {
				e.dropTailQueue(j, overflow, stepEnd)
				arr = e.arrTotal[j]
			}
			if e.transit[j] && arr > 0 {
				// Cut-through: arrivals that fit the hop's spare service
				// this step forward immediately instead of waiting a step,
				// so idle fabric hops add no pipeline latency.
				if spare := e.drain[j]*dtSec - e.served[j]; spare >= arr {
					e.passFrac[j] = 1
				} else if spare > 0 {
					e.passFrac[j] = spare / arr
				}
			}
			e.q[j] = e.q0[j] - e.served[j] + arr*(1-e.passFrac[j])
			if e.q[j] < 0 {
				e.q[j] = 0
			}
		}
		for _, i := range e.activeList {
			e.stepFlowStage(i, s)
		}
	}

	// Final pass: attribute deliveries and marks, apply cuts, close
	// rounds, park finished flows — the single-queue engine's pass 2 on
	// the network's end-to-end deliveries.
	var servedFinal float64
	keep := e.activeList[:0]
	for _, i := range e.activeList {
		h := &e.hot[i]
		w := float64(e.mCnt[i])
		d, dm := h.deliv, h.delivMark
		h.deliv, h.delivMark = 0, 0
		h.inject = 0
		servedFinal += d * w
		e.cumDelivered += d * w
		e.marks += dm * w
		if d > 0 {
			h.roundDel += d
			if dm > 0 {
				h.roundMark += dm
				if !h.reduced {
					h.reduced = true
					f := &e.flows[i]
					f.ctrl.onMarkCut()
					h.win = f.ctrl.window()
				}
			}
		}
		if h.stallT <= e.now {
			var closes bool
			if e.timeRounds {
				f := &e.flows[i]
				if f.roundEnd == 0 {
					f.roundEnd = stepEnd + sim.Time(h.rttSec*1e9)
				} else if stepEnd >= f.roundEnd {
					closes = true
					f.roundEnd = stepEnd + sim.Time(h.rttSec*1e9)
				}
			} else {
				closes = h.roundDel >= h.win
			}
			if closes {
				if h.roundDel > 0 {
					f := &e.flows[i]
					f.ctrl.onRoundEnd(h.roundDel, h.roundMark, h.rttSec)
					h.win = f.ctrl.window()
					f.backoff = 0
				}
				h.roundDel, h.roundMark = 0, 0
				h.reduced = false
			}
		} else {
			// Parked on an RTO: the sender is silent but its in-network
			// volume keeps draining hop to hop, so the flow stays on the
			// active list purely as a drainer until its residue is gone.
			h.roundDel, h.roundMark = 0, 0
			h.reduced = false
			if e.residual(i) <= finishCrumb {
				e.writeOff(i)
				e.flows[i].active = false
				continue
			}
			keep = append(keep, i)
			continue
		}
		if h.unsent <= volEps && e.residual(i) <= finishCrumb {
			e.writeOff(i)
			e.flows[i].active = false
			continue
		}
		keep = append(keep, i)
	}
	e.activeList = keep

	e.recordCompletions(servedFinal, dt, stepEnd)
	e.smp.advance(stepEnd, e.q[e.bneck])
	e.now = stepEnd

	if e.cfg.Check {
		for j := range e.q {
			if e.q[j] < -1e-6 || e.q[j] > e.capQ[j]+1e-6 {
				return fmt.Errorf("flowsim: queue %s %.6f outside [0, %.0f] at %v",
					e.net.Queues[j].Name, e.q[j], e.capQ[j], e.now)
			}
		}
		if e.steps%4096 == 0 {
			if err := e.checkConservation(); err != nil {
				return err
			}
		}
	}
	return nil
}

// stepFlowStage processes record i's hop at stage s (at most one: paths
// are stage-monotonic): depart pro rata with mark attribution, admit this
// step's (post-drop) arrivals plus any cut-through share, and forward the
// departing volume to the next hop or deliver it. Per-member volumes move
// through the record's hop arrays; only the queue-aggregate couplings
// (arrTotal, the sent counter) scale by the member count.
func (e *netEngine) stepFlowStage(i int32, s int) {
	path := e.paths[i]
	o := e.off[i]
	for h, j := range path {
		if e.net.Stage[j] != s {
			continue
		}
		oh := o + int32(h)
		b := e.bk[oh]
		var d, dmTot float64
		if sf := e.sFrac[j]; sf > 0 && b > 0 {
			d = b * sf
			if d > b {
				d = b
			}
			dmOld := d * (e.mk[oh] / b)
			if dmOld > e.mk[oh] {
				dmOld = e.mk[oh]
			}
			e.bk[oh] = b - d
			e.mk[oh] -= dmOld
			dmTot = dmOld + (d-dmOld)*e.markNow[j]
		}
		if a := e.arrH[oh]; a > 0 {
			am := e.arrMkH[oh]
			// Arriving unmarked volume picks up this queue's step mark
			// fraction on its eventual departure; the cut-through share
			// departs now and carries it immediately.
			if pf := e.passFrac[j]; pf > 0 {
				pass := a * pf
				passMk := am * pf
				passMk += (pass - passMk) * e.markNow[j]
				d += pass
				dmTot += passMk
				a -= pass
				am -= am * pf
			}
			e.bk[oh] += a
			e.mk[oh] += am
			if h == 0 {
				// Admit the full post-drop offer (cut-through share
				// included): it leaves the unsent pool and counts as sent.
				admitted := e.arrH[oh]
				u := e.hot[i].unsent - admitted
				if u < 0 {
					u = 0
				}
				e.hot[i].unsent = u
				e.sent += admitted * float64(e.mCnt[i])
			}
		}
		e.arrH[oh] = 0
		e.arrMkH[oh] = 0
		if d > 0 {
			if h+1 < len(path) {
				next := path[h+1]
				no := o + int32(h+1)
				e.arrH[no] += d
				e.arrMkH[no] += dmTot
				e.arrTotal[next] += d * float64(e.mCnt[i])
			} else {
				e.hot[i].deliv += d
				e.hot[i].delivMark += dmTot
			}
		}
		return
	}
}

// dropTailQueue removes overflow volume from this step's arrivals into
// queue j, latest release first — the same victim order, split semantics,
// and loss reactions as the single-queue dropTail. Dropped volume returns
// to the victims' unsent pools (retransmission from the source), wherever
// along the path it was dropped. A cohort whose whole weighted offer is
// consumed reacts in place; the cohort the overflow runs out inside splits
// exactly (netSplitDrop), so each call splits at most one cohort.
func (e *netEngine) dropTailQueue(j int32, overflow float64, stepEnd sim.Time) {
	remaining := overflow
	for ri := e.relPtr - 1; ri >= 0 && remaining > volEps; ri-- {
		rel := e.releases[ri]
		for i := rel.flow; i >= 0 && remaining > volEps; i = e.lineNext[i] {
			if e.flows[i].lastRelease != rel.at {
				continue
			}
			h := e.hopOf(i, j)
			if h < 0 {
				continue
			}
			oh := e.off[i] + int32(h)
			a := e.arrH[oh]
			if a <= 0 {
				continue
			}
			avail := a * float64(e.mCnt[i])
			d := avail
			if d > remaining {
				d = remaining
			}
			if d >= avail {
				// Whole cohort consumed: every member loses its full offer.
				e.netDropHit(i, oh, h, j, a, stepEnd)
				remaining -= d
				continue
			}
			remaining -= e.netSplitDrop(i, oh, h, j, d, stepEnd)
		}
	}
}

// netDropHit removes dPer packets per member from record i's arrivals
// into queue j at hop h (flat index oh), moves the aggregate counters by
// weight, and applies the loss reaction — the network engine's analogue
// of lossReact plus the arrival bookkeeping.
func (e *netEngine) netDropHit(i, oh int32, h int, j int32, dPer float64, stepEnd sim.Time) {
	a := e.arrH[oh]
	frac := dPer / a
	e.arrH[oh] = a - dPer
	dm := e.arrMkH[oh] * frac
	e.arrMkH[oh] -= dm
	total := dPer * float64(e.mCnt[i])
	e.arrTotal[j] -= total
	e.drops += total
	e.retxPkts += total
	if h == 0 {
		// A first-hop drop happens before admission: the volume never
		// left the unsent pool, so it is already queued for
		// retransmission — only the sender's transmit counter moves
		// (mirroring the single-queue dropTail, where dropped volume
		// "stays in the victims' unsent pools").
		e.sent += total
	} else {
		// A deeper-hop drop was admitted (and sent-counted) in an
		// earlier step; return it to the source for retransmission.
		e.hot[i].unsent += dPer
	}

	if e.hot[i].stallT > stepEnd {
		// The victim is already parked on an RTO: drops of its residual
		// in-network volume belong to the same loss event, so the volume
		// returns for retransmission but the timer does not back off
		// again (TCP backs off per timer expiry, not per lost packet).
		return
	}
	f := &e.flows[i]
	w := float64(e.mCnt[i])
	if e.lossInflight(i, e.net.Stage[j]) < e.cfg.DupAckPackets {
		e.timeouts += w
		f.ctrl.onTimeout()
		e.hot[i].win = f.ctrl.window()
		rto := e.cfg.MaxRTO
		if f.backoff < 16 {
			if r := e.cfg.MinRTO << uint(f.backoff); r < rto {
				rto = r
			}
		}
		f.backoff++
		e.hot[i].stallT = stepEnd + rto
		f.roundEnd = 0
		e.hot[i].roundDel, e.hot[i].roundMark = 0, 0
		e.hot[i].reduced = false
		e.stalled = append(e.stalled, i)
		if e.hot[i].stallT < e.nextWake {
			e.nextWake = e.hot[i].stallT
		}
	} else if rttTime := sim.Time(e.hot[i].rttSec * 1e9); stepEnd-f.lastLoss >= rttTime {
		e.fastRetx += w
		f.ctrl.onLoss()
		e.hot[i].win = f.ctrl.window()
		f.lastLoss = stepEnd
	}
}

// netSplitDrop removes d (< the cohort's whole weighted offer) from record
// i's arrivals into queue j by splitting it exactly, mirroring the
// single-queue splitDrop: kFull members lose their entire per-member
// offer, at most one more loses the remainder, the rest are untouched.
func (e *netEngine) netSplitDrop(i, oh int32, h int, j int32, d float64, stepEnd sim.Time) float64 {
	per := e.arrH[oh]
	cnt := e.mCnt[i]
	kFull := int32(d / per)
	if kFull > cnt-1 {
		kFull = cnt - 1
	}
	dPart := d - float64(kFull)*per
	if dPart < 0 {
		dPart = 0
	}
	p := int32(0)
	if dPart > 0 {
		p = 1
	}
	if kFull == 0 && p == 0 {
		return 0
	}
	unaffected := cnt - kFull - p

	if unaffected == 0 && kFull == 0 {
		// Single member, partially hit: react in place, no split.
		e.netDropHit(i, oh, h, j, dPart, stepEnd)
		return dPart
	}

	e.splitsMade++
	off := e.mOff[i]
	if unaffected > 0 {
		// Parent keeps the unaffected head span untouched.
		e.mCnt[i] = unaffected
		if p > 0 {
			part := e.newNetCohort(i, off+unaffected, 1)
			e.netDropHit(part, e.off[part]+int32(h), h, j, dPart, stepEnd)
		}
		if kFull > 0 {
			full := e.newNetCohort(i, off+unaffected+p, kFull)
			fo := e.off[full] + int32(h)
			e.netDropHit(full, fo, h, j, e.arrH[fo], stepEnd)
		}
	} else {
		// Every member is hit (p == 1, kFull == cnt-1): the parent becomes
		// the partial victim and the full victims split off.
		full := e.newNetCohort(i, off+1, kFull)
		fo := e.off[full] + int32(h)
		e.netDropHit(full, fo, h, j, e.arrH[fo], stepEnd)
		e.mCnt[i] = 1
		e.netDropHit(i, oh, h, j, dPart, stepEnd)
	}
	return float64(kFull)*per + dPart
}

// newNetCohort splits the member span [off, off+cnt) out of record parent
// as a new record: per-flow state and the per-hop backlog/mark/arrival
// spans are copied (per-member semantics make the copy exact), the path
// slice header is shared, and the record joins the parent's lineage chain
// and the active list.
func (e *netEngine) newNetCohort(parent, off, cnt int32) int32 {
	ci := int32(len(e.flows))
	e.flows = append(e.flows, e.flows[parent])
	e.hot = append(e.hot, e.hot[parent])
	e.mOff = append(e.mOff, off)
	e.mCnt = append(e.mCnt, cnt)
	e.paths = append(e.paths, e.paths[parent])
	e.baseSec = append(e.baseSec, e.baseSec[parent])
	e.lineNext = append(e.lineNext, e.lineNext[parent])
	e.lineNext[parent] = ci
	po := e.off[parent]
	hops := int32(len(e.paths[parent]))
	e.off = append(e.off, int32(len(e.bk)))
	e.bk = append(e.bk, e.bk[po:po+hops]...)
	e.mk = append(e.mk, e.mk[po:po+hops]...)
	e.arrH = append(e.arrH, e.arrH[po:po+hops]...)
	e.arrMkH = append(e.arrMkH, e.arrMkH[po:po+hops]...)
	e.flows[ci].active = true
	e.activeList = append(e.activeList, ci)
	return ci
}

// hopOf returns the hop index of queue j in record i's path, or -1.
func (e *netEngine) hopOf(i, j int32) int {
	for h, qj := range e.paths[i] {
		if qj == j {
			return h
		}
	}
	return -1
}

// lossInflight estimates the drop victim's in-network volume after this
// step's departures — hops at stages not yet integrated still hold their
// start-of-step backlog, so their pending pro-rata departure is deducted
// — plus its not-yet-admitted arrivals. This mirrors the single-queue
// dropTail's backlog+arr duplicate-ACK test, where backlog is already
// post-delivery when drops are assessed.
func (e *netEngine) lossInflight(i int32, s int) float64 {
	o := e.off[i]
	var total float64
	for h, j := range e.paths[i] {
		b := e.bk[o+int32(h)]
		if e.net.Stage[j] >= s {
			b *= 1 - e.sFrac[j]
		}
		total += b + e.arrH[o+int32(h)]
	}
	return total
}

// residual is the record's per-member in-network backlog.
func (e *netEngine) residual(i int32) float64 {
	o := e.off[i]
	var total float64
	for h := range e.paths[i] {
		total += e.bk[o+int32(h)]
	}
	return total
}

// writeOff retires a finished (or stalled-and-drained) flow's sub-packet
// residue: the crumbs leave their queues and count as delivered, sparing
// tens of steps of multiplicative decay — the network analogue of the
// single-queue engine's orphan bucket, bounded by Flows x finishCrumb
// packets per burst.
func (e *netEngine) writeOff(i int32) {
	o := e.off[i]
	w := float64(e.mCnt[i])
	for h, j := range e.paths[i] {
		oh := o + int32(h)
		if b := e.bk[oh]; b > 0 {
			e.q[j] -= b * w
			if e.q[j] < 0 {
				e.q[j] = 0
			}
			e.cumDelivered += b * w
			e.bk[oh] = 0
			e.mk[oh] = 0
		}
	}
	e.hot[i].ackPipe = 0
	e.hot[i].roundDel, e.hot[i].roundMark = 0, 0
	e.hot[i].reduced = false
}

// wakeDue reactivates stalled flows whose RTO expired.
func (e *netEngine) wakeDue() {
	keep := e.stalled[:0]
	e.nextWake = math.MaxInt64
	for _, i := range e.stalled {
		if e.hot[i].stallT <= e.now {
			e.hot[i].stallT = 0
			if e.hot[i].unsent > volEps || e.residual(i) > volEps {
				e.activate(i)
			}
		} else {
			keep = append(keep, i)
			if e.hot[i].stallT < e.nextWake {
				e.nextWake = e.hot[i].stallT
			}
		}
	}
	e.stalled = keep
}

// recordCompletions mirrors the single-queue detector on the network's
// end-to-end deliveries.
func (e *netEngine) recordCompletions(served float64, dt, stepEnd sim.Time) {
	for e.burstsDone < e.cfg.Bursts {
		target := float64(e.burstsDone+1) * float64(e.cfg.Flows) * e.segs
		if e.cumDelivered < target-e.crumbEps {
			break
		}
		if e.releasedFlows < float64((e.burstsDone+1)*e.cfg.Flows) {
			break
		}
		t := stepEnd
		if served > 0 {
			over := e.cumDelivered - target
			if over < 0 {
				over = 0
			}
			if over > served {
				over = served
			}
			t = stepEnd - sim.Time(over/served*float64(dt))
		}
		start := sim.Time(e.burstsDone) * e.cfg.Interval
		e.bcts = append(e.bcts, t+e.cfg.BaseRTT/2-start)
		e.burstsDone++
	}
}

// checkConservation verifies released volume against delivered + unsent +
// queued, and each queue's aggregate against the per-flow backlogs.
func (e *netEngine) checkConservation() error {
	var unsent, backlog float64
	perQueue := make([]float64, len(e.q))
	for i := range e.flows {
		w := float64(e.mCnt[i])
		unsent += e.hot[i].unsent * w
		o := e.off[i]
		for h, j := range e.paths[i] {
			b := e.bk[o+int32(h)] * w
			backlog += b
			perQueue[j] += b
		}
	}
	released := e.releasedFlows * e.segs
	tol := 1e-6*released + float64(e.cfg.Flows)*(volEps*10+finishCrumb) + 1e-3
	if diff := math.Abs(released - (e.cumDelivered + unsent + backlog)); diff > tol {
		return fmt.Errorf("flowsim: network volume conservation violated at %v: released %.3f != delivered %.3f + unsent %.3f + queued %.3f (diff %.6f)",
			e.now, released, e.cumDelivered, unsent, backlog, diff)
	}
	for j := range e.q {
		if diff := math.Abs(perQueue[j] - e.q[j]); diff > 1e-3+1e-6*e.capQ[j] {
			return fmt.Errorf("flowsim: queue %s accounting violated at %v: aggregate %.6f vs per-flow sum %.6f",
				e.net.Queues[j].Name, e.now, e.q[j], perQueue[j])
		}
	}
	return nil
}

// finish assembles the Result, identically shaped to the single-queue
// engine's.
func (e *netEngine) finish() (*Result, error) {
	cfg := e.cfg
	if err := e.checkConservation(); err != nil {
		return nil, err
	}
	if len(e.bcts) < cfg.Bursts {
		return nil, fmt.Errorf("flowsim: network run completed only %d of %d bursts", len(e.bcts), cfg.Bursts)
	}
	r := &Result{
		Flows:         cfg.Flows,
		AlgName:       cfg.CC.Name,
		QueueCapacity: cfg.QueueCapacityPackets,
		ECNThreshold:  cfg.ECNThresholdPackets,
		Steps:         e.steps,
		SimNow:        e.now,
	}

	avg := stats.NewSeries(0, int64(cfg.SampleInterval), e.smp.perBurst)
	copy(avg.Values, e.smp.avg)
	avg.Scale(1 / float64(e.smp.measured))
	r.AvgQueue = avg
	r.MaxQueue = e.smp.maxQ
	if e.smp.busy > 0 {
		r.FracBelowK = float64(e.smp.belowK) / float64(e.smp.busy)
	}
	spikeSamples := int(2 * sim.Millisecond / cfg.SampleInterval)
	for i := 0; i < spikeSamples && i < len(avg.Values); i++ {
		if avg.Values[i] > r.SpikePackets {
			r.SpikePackets = avg.Values[i]
		}
	}

	var bctSum sim.Time
	measured := e.bcts[e.smp.first:]
	r.BCTs = append(r.BCTs, measured...)
	for _, b := range measured {
		bctSum += b
		if b > r.MaxBCT {
			r.MaxBCT = b
		}
	}
	r.MeanBCT = bctSum / sim.Time(len(measured))

	round := func(v float64) int64 { return int64(math.Round(v)) }
	r.Timeouts = round(e.timeouts - e.baseTimeouts)
	r.FastRetransmits = round(e.fastRetx - e.baseFastRetx)
	r.RetransmitPackets = round(e.retxPkts - e.baseRetxPkts)
	r.Drops = round(e.drops - e.baseDrops)
	r.Marks = round(e.marks - e.baseMarks)
	r.SentPackets = round(e.sent - e.baseSent)
	r.DeliveredPackets = round(e.cumDelivered - e.baseDelivered)
	// Per-flow end-state, written at member flow IDs exactly as the
	// single-queue engine does.
	r.FinalCwndPkts = make([]float64, cfg.Flows)
	alphas := e.flows[0].ctrl.kind == KindDCTCP
	if alphas {
		r.FinalAlphas = make([]float64, cfg.Flows)
	}
	for i := range e.flows {
		cnt := int64(e.mCnt[i])
		r.CwndUpdates += e.flows[i].ctrl.updates * cnt
		win := e.flows[i].ctrl.window()
		for _, m := range e.perm[e.mOff[i] : e.mOff[i]+e.mCnt[i]] {
			r.FinalCwndPkts[m] = win
			if alphas {
				r.FinalAlphas[m] = e.flows[i].ctrl.alpha
			}
		}
	}
	r.Cohorts = len(e.mCnt)
	r.CohortSplits = e.splitsMade
	r.PeakCohortWeight = e.peakW
	return r, nil
}
