package flowsim

import (
	"math"

	"incastlab/internal/sim"
)

// Kind selects a reduced-form congestion-control law. Each is the fluid
// counterpart of an internal/cc implementation: instead of reacting to
// individual ACKs, the law updates once per RTT-long round from the round's
// aggregate mark fraction and delay sample.
type Kind int

const (
	// KindDCTCP is the ECN-proportional law: alpha is an EWMA of the
	// per-round mark fraction, a marked round shrinks the window once by
	// penalty(alpha) = alpha^d/2 (d = 1 for plain DCTCP, deadline-corrected
	// for D2TCP), and growth is scaled by the unmarked fraction.
	KindDCTCP Kind = iota
	// KindReno ignores marks entirely: slow start, additive increase, and
	// loss/timeout reactions only.
	KindReno
	// KindSwift is the delay-based law: additive increase while the round
	// RTT is below target, multiplicative decrease proportional to the
	// excess otherwise, with a fractional (sub-packet) window floor.
	KindSwift
)

// CCConfig parameterizes a reduced-form controller. All windows are in
// packets (one packet = one MSS of payload occupying one MTU queue slot);
// zero values take the documented defaults.
type CCConfig struct {
	// Kind selects the law.
	Kind Kind
	// Name labels results (e.g. "dctcp", "dctcp+guardrail", "d2tcp").
	Name string
	// InitialWindowPkts is the starting window (default 10, the Linux IW).
	InitialWindowPkts float64
	// G is the DCTCP alpha EWMA gain (default 1/16).
	G float64
	// InitialAlpha is the starting congestion estimate (default 1).
	InitialAlpha float64
	// DeadlineFactor is the D2TCP imminence exponent d in penalty =
	// alpha^d/2, clamped to [0.5, 2]; 0 means neutral (1, plain DCTCP).
	DeadlineFactor float64
	// CapPkts clamps the effective window (the Guardrail proposal);
	// 0 means no clamp.
	CapPkts float64
	// TargetDelay is the Swift delay target (default 1.5x base RTT).
	TargetDelay sim.Time
	// AIPkts is the Swift additive increase per round (default 1).
	AIPkts float64
	// Beta is the Swift maximum fractional decrease per round (default 0.8).
	Beta float64
	// MinWindowPkts is the Swift fractional floor (default 0.01 packets,
	// matching cc.SwiftConfig's MSS/100).
	MinWindowPkts float64
}

// controller is the per-flow reduced-form congestion state. One struct with
// a kind switch keeps the per-step hot path free of interface dispatch.
type controller struct {
	kind Kind

	// w is the internal window in packets; window() applies floors/caps.
	w        float64
	ssthresh float64

	// DCTCP family.
	alpha float64
	g     float64
	dexp  float64

	// Guardrail clamp (0 = none).
	capPkts float64

	// Swift.
	targetSec float64
	aiPkts    float64
	beta      float64
	minW      float64

	updates int64
}

func (cfg *CCConfig) fill(baseRTT sim.Time) {
	if cfg.InitialWindowPkts <= 0 {
		cfg.InitialWindowPkts = 10
	}
	if cfg.G <= 0 || cfg.G > 1 {
		cfg.G = 1.0 / 16.0
	}
	if cfg.InitialAlpha <= 0 || cfg.InitialAlpha > 1 {
		cfg.InitialAlpha = 1
	}
	if cfg.DeadlineFactor == 0 {
		cfg.DeadlineFactor = 1
	}
	if cfg.DeadlineFactor < 0.5 {
		cfg.DeadlineFactor = 0.5
	}
	if cfg.DeadlineFactor > 2 {
		cfg.DeadlineFactor = 2
	}
	if cfg.TargetDelay <= 0 {
		cfg.TargetDelay = baseRTT + baseRTT/2
	}
	if cfg.AIPkts <= 0 {
		cfg.AIPkts = 1
	}
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		cfg.Beta = 0.8
	}
	if cfg.MinWindowPkts <= 0 {
		cfg.MinWindowPkts = 0.01
	}
	if cfg.Name == "" {
		switch cfg.Kind {
		case KindReno:
			cfg.Name = "reno"
		case KindSwift:
			cfg.Name = "swift"
		default:
			cfg.Name = "dctcp"
		}
	}
}

func newController(cfg CCConfig) controller {
	return controller{
		kind:      cfg.Kind,
		w:         cfg.InitialWindowPkts,
		ssthresh:  math.Inf(1),
		alpha:     cfg.InitialAlpha,
		g:         cfg.G,
		dexp:      cfg.DeadlineFactor,
		capPkts:   cfg.CapPkts,
		targetSec: float64(cfg.TargetDelay) / 1e9,
		aiPkts:    cfg.AIPkts,
		beta:      cfg.Beta,
		minW:      cfg.MinWindowPkts,
	}
}

// window returns the effective window in packets: window-based laws floor
// at one packet, Swift floors at its fractional minimum, and the Guardrail
// cap clamps everything.
func (c *controller) window() float64 {
	w := c.w
	if c.kind == KindSwift {
		if w < c.minW {
			w = c.minW
		}
	} else if w < 1 {
		w = 1
	}
	if c.capPkts > 0 && w > c.capPkts {
		w = c.capPkts
	}
	return w
}

// onMarkCut applies the at-most-once-per-round proportional decrease when a
// round first sees marked deliveries. Only the DCTCP family reacts to
// marks; Reno and Swift ignore ECN.
func (c *controller) onMarkCut() {
	if c.kind != KindDCTCP {
		return
	}
	c.w *= 1 - math.Pow(c.alpha, c.dexp)/2
	if c.w < 1 {
		c.w = 1
	}
	c.ssthresh = c.w
	c.updates++
}

// timeBasedRounds reports whether the law closes rounds on elapsed RTT
// (Swift's per-RTT AI/MD) instead of on delivered volume (the DCTCP
// family's one-window-of-data observation rounds).
func (c *controller) timeBasedRounds() bool { return c.kind == KindSwift }

// onRoundEnd closes one observation round. delivered and marked are the
// round's delivered and ECN-marked volumes in packets; rttSec is the
// current RTT. Growth mirrors the packet implementations, which grow per
// unmarked ACK: the unmarked delivered volume drives slow start
// byte-for-byte and congestion avoidance at 1/w — so a round that only
// dribbled a fraction of a packet (e.g. the below-threshold drain tail of
// a burst, split across all flows) grows windows by that fraction, not by
// a full doubling.
func (c *controller) onRoundEnd(delivered, marked, rttSec float64) {
	switch c.kind {
	case KindSwift:
		if rttSec < c.targetSec {
			c.w += c.aiPkts
		} else {
			excess := (rttSec - c.targetSec) / rttSec
			factor := 1 - c.beta*excess
			if factor < 0.3 {
				factor = 0.3
			}
			c.w *= factor
		}
		if c.w < c.minW {
			c.w = c.minW
		}
	default:
		if delivered <= 0 {
			return
		}
		if marked > delivered {
			marked = delivered
		}
		if c.kind == KindDCTCP {
			c.alpha = (1-c.g)*c.alpha + c.g*(marked/delivered)
		}
		unmarked := delivered - marked
		if c.kind == KindReno {
			unmarked = delivered // Reno ignores marks
		}
		if unmarked > 0 {
			if c.w < c.ssthresh {
				c.w += unmarked
				if c.w > c.ssthresh {
					c.w = c.ssthresh
				}
			} else {
				c.w += unmarked / c.w
			}
		}
	}
	if c.capPkts > 0 && c.w > c.capPkts {
		c.w = c.capPkts
	}
	c.updates++
}

// onLoss is the fast-retransmit reaction: halve.
func (c *controller) onLoss() {
	if c.kind == KindSwift {
		c.w *= 0.5
		if c.w < c.minW {
			c.w = c.minW
		}
	} else {
		c.w /= 2
		if c.w < 1 {
			c.w = 1
		}
		c.ssthresh = c.w
	}
	c.updates++
}

// onTimeout collapses to the minimum window and restarts slow start.
func (c *controller) onTimeout() {
	if c.kind == KindSwift {
		c.w = c.minW
	} else {
		c.ssthresh = c.w / 2
		if c.ssthresh < 1 {
			c.ssthresh = 1
		}
		c.w = 1
	}
	c.updates++
}
