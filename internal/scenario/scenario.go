// Package scenario is incastlab's declarative experiment layer: a
// JSON-encodable Spec describes a complete incast study — topology,
// workload shape, congestion-control algorithm and parameters, transport
// tuning, and a sweep axis with its values — and internal/core compiles
// it into packet-level simulation configs and runs it to CSV. Scenarios
// are data, not code: the ten ablation experiments are specs compiled by
// one generic runner, and `incastsim -scenario file.json` runs a
// user-defined study end to end with no Go changes.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Spec is one declarative scenario: a named sweep of packet-level incast
// simulations sharing a workload, topology, and transport setup, varying
// one axis.
type Spec struct {
	// Name identifies the scenario. It becomes the CSV file stem, the
	// metrics "experiment" label, and — for registered ablations — the
	// registry name.
	Name string `json:"name"`
	// Title overrides the summary heading; empty means "Scenario: <name>".
	Title string `json:"title,omitempty"`
	// Notes is free-form commentary appended to the text summary.
	Notes string `json:"notes,omitempty"`
	// Topology overrides the paper's dumbbell parameters; nil keeps the
	// per-flow-count defaults.
	Topology *Topology `json:"topology,omitempty"`
	// Workload shapes the repeated-burst incast.
	Workload Workload `json:"workload"`
	// CC selects the congestion-control algorithm; nil means DCTCP with
	// the paper's parameters.
	CC *CC `json:"cc,omitempty"`
	// Transport tunes the TCP sender/receiver; nil keeps the paper
	// defaults (200 ms min RTO, immediate ACKs, persistent windows).
	Transport *Transport `json:"transport,omitempty"`
	// Notification enables switch-side incast detection and the explicit
	// notification path (Pulser-style sender backoff). With the
	// "notification" sweep axis, the block parameterizes the mechanism and
	// the axis values toggle it per row.
	Notification *Notification `json:"notification,omitempty"`
	// Sweep names the varied axis and its values; every value is one row
	// of the result table.
	Sweep Sweep `json:"sweep"`
	// Fidelity selects the simulation backend: "packet" (the default,
	// also selected by omission) runs the discrete-event simulator;
	// "flow" runs the fluid fast-path engine, which is orders of
	// magnitude faster but rejects packet-level-only features (shared
	// buffers, delayed ACKs, ICTCP, idle restart).
	Fidelity string `json:"fidelity,omitempty"`
	// Aggregation selects how the fluid backend represents the flow
	// population: "perflow" (one record per flow), "cohort" (equivalence
	// classes integrated as weighted records, split lazily and exactly on
	// divergence — the million-flow fast path), or "auto" (also by
	// omission: cohorts from the backend's flow-count threshold up).
	// Requires fidelity "flow" when set.
	Aggregation string `json:"aggregation,omitempty"`
}

// Topology overrides the paper's dumbbell configuration. Zero fields keep
// the defaults (10/100 Gbps, 1333-packet queues, K=65).
type Topology struct {
	// HostLinkGbps and CoreLinkGbps set the line rates.
	HostLinkGbps float64 `json:"host_link_gbps,omitempty"`
	CoreLinkGbps float64 `json:"core_link_gbps,omitempty"`
	// QueuePackets bounds every switch port queue (bytes scale with MTU).
	QueuePackets int `json:"queue_packets,omitempty"`
	// ECNThresholdPackets is the marking threshold K.
	ECNThresholdPackets int `json:"ecn_threshold_pkts,omitempty"`
	// SharedBufferBytes pools the receiver-side port queues into a shared
	// switch memory with dynamic-threshold factor SharedBufferAlpha.
	SharedBufferBytes int     `json:"shared_buffer_bytes,omitempty"`
	SharedBufferAlpha float64 `json:"shared_buffer_alpha,omitempty"`
	// ContendBytes models rack-level contention: bytes consumed in the
	// shared buffer by bursts to other hosts.
	ContendBytes int `json:"contend_bytes,omitempty"`
	// Clos replaces the dumbbell with a multi-rack leaf/spine fabric. The
	// scalar overrides above still apply (host link rate, queue bounds, ECN
	// threshold, per-leaf shared buffer); CoreLinkGbps does not — the
	// fabric's inter-switch rate is Clos.SpineLinkGbps.
	Clos *Clos `json:"clos,omitempty"`
}

// Clos describes a two-tier leaf/spine fabric: Racks ToR switches with
// HostsPerRack hosts each, every leaf uplinked to every spine, and
// cross-rack flows hashed over the uplinks with deterministic seeded ECMP.
// The incast aggregator sits at rack 0, slot 0; workers are placed by
// Placement (or the "placement" sweep axis).
type Clos struct {
	// Racks is the leaf count (at least 2).
	Racks int `json:"racks"`
	// HostsPerRack is the host count under each leaf.
	HostsPerRack int `json:"hosts_per_rack"`
	// Spines is the spine count (default 2).
	Spines int `json:"spines,omitempty"`
	// SpineLinkGbps sets each leaf-spine uplink's rate directly (default
	// 100). Mutually exclusive with Oversubscription.
	SpineLinkGbps float64 `json:"spine_link_gbps,omitempty"`
	// Oversubscription sets the uplink rate indirectly as the rack's
	// oversubscription factor: offered host bandwidth over aggregate uplink
	// bandwidth (e.g. 4 means hosts_per_rack*host_gbps = 4*spines*uplink).
	Oversubscription float64 `json:"oversubscription,omitempty"`
	// ECMPSeed seeds the flow-placement hash; 0 derives it from the run
	// seed, so `-seed` reshuffles ECMP placement along with start jitter.
	ECMPSeed uint64 `json:"ecmp_seed,omitempty"`
	// Placement is where workers sit relative to the aggregator:
	// "cross-rack" (default) or "same-rack". Ignored when the sweep axis is
	// "placement".
	Placement string `json:"placement,omitempty"`
	// Aggregators runs that many concurrent incasts over the fabric
	// (default 1): aggregator k receives at rack k, slot 0, each fanning
	// in workload.flows workers, so the spine layer carries overlapping
	// incasts. Ignored when the sweep axis is "aggregators".
	Aggregators int `json:"aggregators,omitempty"`
}

// Workload shapes the repeated-burst incast the scenario simulates.
type Workload struct {
	// Flows is the incast degree N. It may be omitted when the sweep
	// supplies the degrees (axis "flows" or Sweep.Flows).
	Flows int `json:"flows,omitempty"`
	// BurstMS is the target burst duration in milliseconds (default 15).
	BurstMS float64 `json:"burst_ms,omitempty"`
	// IntervalMS is the burst start-to-start spacing in milliseconds
	// (default 250; keep it above the minimum RTO so one burst's timeout
	// recovery does not bleed into the next).
	IntervalMS float64 `json:"interval_ms,omitempty"`
	// Bursts is the burst count in full runs (default 11; the first burst
	// is always discarded as a slow-start transient). QuickBursts is the
	// count under quick mode (default 4).
	Bursts      int `json:"bursts,omitempty"`
	QuickBursts int `json:"quick_bursts,omitempty"`
	// JitterUS is the per-flow start jitter ceiling in microseconds
	// (default 100). Very large synchronized incasts can lock their
	// retransmission timers together and never drain the burst tail;
	// widening the jitter desynchronizes them. Must stay below the burst
	// interval.
	JitterUS float64 `json:"jitter_us,omitempty"`
}

// CC selects and parameterizes the congestion-control algorithm.
type CC struct {
	// Algorithm is one of CCNames; empty means "dctcp".
	Algorithm string `json:"algorithm,omitempty"`
	// G overrides DCTCP's alpha gain (0 keeps the paper's 1/16).
	G float64 `json:"g,omitempty"`
	// InitialWindowPkts overrides Reno's initial window in packets
	// (0 keeps the default 10).
	InitialWindowPkts int `json:"initial_window_pkts,omitempty"`
}

// Transport tunes the TCP sender and receiver.
type Transport struct {
	// MinRTOMS sets the minimum retransmission timeout in milliseconds.
	MinRTOMS float64 `json:"min_rto_ms,omitempty"`
	// DelayedAcks coalesces ACKs (AckEvery segments per ACK, default 2).
	DelayedAcks bool `json:"delayed_acks,omitempty"`
	AckEvery    int  `json:"ack_every,omitempty"`
	// IdleRestart applies RFC 2861-style congestion window validation.
	IdleRestart bool `json:"idle_restart,omitempty"`
	// ICTCP manages receive windows with a receiver-side ICTCP controller.
	ICTCP bool `json:"ictcp,omitempty"`
}

// Notification configures switch-side incast detection and the sender
// reaction. Zero fields take the defaults sized for the paper's ~30us-RTT
// fabrics (5us window, 16-packet slope, 64-arrival burst, 50us cooldown,
// 0.5 backoff).
type Notification struct {
	// WindowUS is the detector observation window in microseconds.
	WindowUS float64 `json:"window_us,omitempty"`
	// SlopePackets trips the detector on this much queue growth within
	// one window.
	SlopePackets int `json:"slope_packets,omitempty"`
	// BurstArrivals trips the detector on this many arrivals within one
	// window regardless of net growth.
	BurstArrivals int `json:"burst_arrivals,omitempty"`
	// CooldownUS is the minimum time between firings, in microseconds.
	CooldownUS float64 `json:"cooldown_us,omitempty"`
	// Backoff is the sender's multiplicative reaction factor in (0, 1).
	Backoff float64 `json:"backoff,omitempty"`
	// HoldAcks is how many ACKs the backoff holds before releasing.
	HoldAcks int `json:"hold_acks,omitempty"`
	// MinPorts > 0 selects distributed in-fabric detection on a Clos
	// fabric: each leaf declares incast when this many of its uplink
	// ports trip within CoordWindowUS microseconds, and notifies every
	// same-rack flow seen within FlowHorizonUS microseconds (default 100).
	MinPorts      int     `json:"min_ports,omitempty"`
	CoordWindowUS float64 `json:"coord_window_us,omitempty"`
	FlowHorizonUS float64 `json:"flow_horizon_us,omitempty"`
}

// Sweep is the scenario's varied axis.
type Sweep struct {
	// Axis names the swept parameter; see Axes for the vocabulary.
	Axis string `json:"axis"`
	// Values are the axis values, one simulation (table row) each. Their
	// JSON kind must match the axis: numbers for number axes, booleans
	// for flag axes, strings for name axes.
	Values []Value `json:"values"`
	// Labels overrides how each value renders in the axis column; when
	// present its length must equal len(Values).
	Labels []string `json:"labels,omitempty"`
	// Column overrides the axis column's header (default: the axis name).
	Column string `json:"column,omitempty"`
	// Flows crosses the axis with several incast degrees, adding a
	// leading "flows" column (rows iterate degrees outermost). It is
	// mutually exclusive with axis "flows" and with Workload.Flows.
	Flows []int `json:"flows,omitempty"`
}

// ValueKind is the JSON value kind a sweep axis expects.
type ValueKind int

// The three axis value kinds.
const (
	Number ValueKind = iota
	Flag
	Name
)

func (k ValueKind) String() string {
	switch k {
	case Number:
		return "number"
	case Flag:
		return "boolean"
	case Name:
		return "string"
	}
	return "unknown"
}

// Axes is the sweep-axis vocabulary: axis name to expected value kind.
//
//	flows               incast degree N
//	g                   DCTCP alpha gain
//	ecn_threshold_pkts  switch marking threshold K
//	min_rto_ms          minimum retransmission timeout
//	marking_ewma        RED-style EWMA marking weight (0 = instantaneous)
//	delayed_acks        immediate vs coalesced ACKs
//	idle_restart        persistent windows vs RFC 2861 restarts
//	shared_buffer       dedicated queues vs the spec's shared buffer
//	ictcp               receiver-side ICTCP window management on/off
//	cc                  congestion-control algorithm by name
//	scheme              Section 5 schemes: dctcp, dctcp+guardrail, dctcp+wave<N>
//	placement           Clos worker placement: same-rack vs cross-rack
//	aggregators         concurrent Clos incasts sharing the fabric (one per rack, from rack 0)
//	notification        explicit incast notification on/off (needs the spec's notification block)
var Axes = map[string]ValueKind{
	"flows":              Number,
	"g":                  Number,
	"ecn_threshold_pkts": Number,
	"min_rto_ms":         Number,
	"marking_ewma":       Number,
	"aggregators":        Number,
	"delayed_acks":       Flag,
	"idle_restart":       Flag,
	"shared_buffer":      Flag,
	"ictcp":              Flag,
	"notification":       Flag,
	"cc":                 Name,
	"scheme":             Name,
	"placement":          Name,
}

// Placements lists the Clos worker placement policies, for Clos.Placement
// and axis "placement" values.
var Placements = []string{"cross-rack", "same-rack"}

// KnownPlacement reports whether name is a placement policy ("" means
// cross-rack).
func KnownPlacement(name string) bool {
	for _, p := range Placements {
		if name == p {
			return true
		}
	}
	return name == ""
}

// CCNames lists the congestion-control algorithms a spec may name, for
// CC.Algorithm and for axis "cc" values. "d2tcp-tight" is D2TCP with a
// tight deadline factor (D=2), the CCA ablation's configuration.
var CCNames = []string{"dctcp", "reno", "swift", "d2tcp", "d2tcp-tight"}

// Fidelities lists the simulation backends a spec may name.
var Fidelities = []string{"packet", "flow"}

// KnownFidelity reports whether name selects a backend ("" means packet).
func KnownFidelity(name string) bool {
	for _, f := range Fidelities {
		if name == f {
			return true
		}
	}
	return name == ""
}

// Aggregations lists the flow-population representations a flow-fidelity
// spec may name.
var Aggregations = []string{"auto", "cohort", "perflow"}

// KnownAggregation reports whether name selects an aggregation level (""
// means auto).
func KnownAggregation(name string) bool {
	for _, a := range Aggregations {
		if name == a {
			return true
		}
	}
	return name == ""
}

// KnownCC reports whether name is a recognized congestion-control name.
func KnownCC(name string) bool {
	for _, n := range CCNames {
		if n == name {
			return true
		}
	}
	return false
}

// schemePattern matches the Section 5 scheme names: plain DCTCP, the
// guardrail clamp, and wave scheduling with an explicit concurrency.
var schemePattern = regexp.MustCompile(`^dctcp(\+guardrail|\+wave[1-9][0-9]*)?$`)

// KnownScheme reports whether name is a recognized scheme axis value.
func KnownScheme(name string) bool { return schemePattern.MatchString(name) }

// WaveSize extracts the concurrency from a "dctcp+wave<N>" scheme name,
// returning 0 for other schemes.
func WaveSize(scheme string) int {
	const prefix = "dctcp+wave"
	if !strings.HasPrefix(scheme, prefix) {
		return 0
	}
	n, err := strconv.Atoi(scheme[len(prefix):])
	if err != nil {
		return 0
	}
	return n
}

// namePattern bounds scenario names to safe CSV/metric identifiers.
var namePattern = regexp.MustCompile(`^[a-z0-9][a-z0-9_.-]*$`)

// Value is one sweep-axis value: a JSON number, string, or boolean. It
// preserves the exact JSON text, so specs round-trip losslessly.
type Value struct {
	raw string
}

// Num builds a number value.
func Num(v float64) Value { return Value{raw: strconv.FormatFloat(v, 'g', -1, 64)} }

// Nums builds a number value list.
func Nums(vs ...float64) []Value {
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = Num(v)
	}
	return out
}

// Str builds a string (name) value.
func Str(s string) Value {
	b, err := json.Marshal(s)
	if err != nil {
		// Strings always marshal.
		panic(err)
	}
	return Value{raw: string(b)}
}

// Strs builds a string value list.
func Strs(ss ...string) []Value {
	out := make([]Value, len(ss))
	for i, s := range ss {
		out[i] = Str(s)
	}
	return out
}

// Flg builds a boolean value.
func Flg(b bool) Value { return Value{raw: strconv.FormatBool(b)} }

// Flags builds a boolean value list.
func Flags(bs ...bool) []Value {
	out := make([]Value, len(bs))
	for i, b := range bs {
		out[i] = Flg(b)
	}
	return out
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.raw == "" {
		return nil, fmt.Errorf("scenario: marshaling a zero Value")
	}
	return []byte(v.raw), nil
}

// UnmarshalJSON implements json.Unmarshaler: scalars only.
func (v *Value) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if s == "" || s == "null" || strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[") {
		return fmt.Errorf("scenario: sweep value %s must be a number, string, or boolean", s)
	}
	v.raw = s
	return nil
}

// Kind returns the value's JSON kind.
func (v Value) Kind() ValueKind {
	switch {
	case strings.HasPrefix(v.raw, `"`):
		return Name
	case v.raw == "true" || v.raw == "false":
		return Flag
	default:
		return Number
	}
}

// Number returns the numeric value; ok is false for non-numbers.
func (v Value) Number() (f float64, ok bool) {
	if v.Kind() != Number {
		return 0, false
	}
	f, err := strconv.ParseFloat(v.raw, 64)
	return f, err == nil
}

// Bool returns the boolean value; ok is false for non-booleans.
func (v Value) Bool() (b, ok bool) {
	if v.Kind() != Flag {
		return false, false
	}
	return v.raw == "true", true
}

// Str returns the string value; ok is false for non-strings.
func (v Value) Str() (s string, ok bool) {
	if v.Kind() != Name {
		return "", false
	}
	if err := json.Unmarshal([]byte(v.raw), &s); err != nil {
		return "", false
	}
	return s, true
}

// String renders the value for error messages and default labels.
func (v Value) String() string {
	if s, ok := v.Str(); ok {
		return s
	}
	return v.raw
}

// Validate rejects malformed specs with actionable errors. A valid spec
// is guaranteed to compile.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name (it becomes the CSV file stem)")
	}
	if !namePattern.MatchString(s.Name) {
		return fmt.Errorf("scenario %q: name must match %s (lowercase letters, digits, '_', '.', '-')", s.Name, namePattern)
	}
	if err := s.Workload.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.Topology != nil {
		if err := s.Topology.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.CC != nil {
		if err := s.CC.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.Transport != nil {
		if err := s.Transport.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.Notification != nil {
		if err := s.Notification.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if err := s.Sweep.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	// Cross-field rules: the incast degree must come from exactly one
	// place, and every run needs one.
	sweepsFlows := s.Sweep.Axis == "flows"
	if sweepsFlows && len(s.Sweep.Flows) > 0 {
		return fmt.Errorf("scenario %q: axis \"flows\" and sweep.flows are mutually exclusive", s.Name)
	}
	if (sweepsFlows || len(s.Sweep.Flows) > 0) && s.Workload.Flows != 0 {
		return fmt.Errorf("scenario %q: workload.flows conflicts with the sweep's flow degrees; set one or the other", s.Name)
	}
	if !sweepsFlows && len(s.Sweep.Flows) == 0 && s.Workload.Flows <= 0 {
		return fmt.Errorf("scenario %q: workload.flows must be a positive incast degree (or sweep flows via the axis)", s.Name)
	}
	if s.Topology == nil && s.Sweep.Axis == "shared_buffer" {
		return fmt.Errorf("scenario %q: axis \"shared_buffer\" needs a topology with shared_buffer_bytes to toggle", s.Name)
	}
	if s.Sweep.Axis == "notification" && s.Notification == nil {
		return fmt.Errorf("scenario %q: axis \"notification\" needs a notification block to toggle", s.Name)
	}
	if s.Notification != nil && s.Fidelity == "flow" {
		return fmt.Errorf("scenario %q: fidelity \"flow\" cannot model the notification path (detector firings and zero-payload control packets are per-packet dynamics) — use fidelity \"packet\" or drop the notification block", s.Name)
	}
	if !KnownFidelity(s.Fidelity) {
		return fmt.Errorf("scenario %q: fidelity %q is not one of %s (or omit for packet-level)",
			s.Name, s.Fidelity, strings.Join(Fidelities, ", "))
	}
	if !KnownAggregation(s.Aggregation) {
		return fmt.Errorf("scenario %q: aggregation %q is not one of %s (or omit for auto)",
			s.Name, s.Aggregation, strings.Join(Aggregations, ", "))
	}
	if s.Aggregation != "" && s.Fidelity != "flow" {
		return fmt.Errorf("scenario %q: aggregation %q shapes the fluid backend's flow population; it requires fidelity \"flow\"",
			s.Name, s.Aggregation)
	}

	// Clos cross-field rules.
	var clos *Clos
	if s.Topology != nil {
		clos = s.Topology.Clos
	}
	if s.Sweep.Axis == "placement" && clos == nil {
		return fmt.Errorf("scenario %q: axis \"placement\" places workers in a fabric; it needs a topology.clos block", s.Name)
	}
	if s.Sweep.Axis == "aggregators" && clos == nil {
		return fmt.Errorf("scenario %q: axis \"aggregators\" spreads incasts over racks; it needs a topology.clos block", s.Name)
	}
	if s.Notification != nil && s.Notification.MinPorts > 0 && clos == nil {
		return fmt.Errorf("scenario %q: notification.min_ports coordinates detectors across a leaf's uplink ports; it needs a topology.clos block", s.Name)
	}
	if clos != nil {
		// Both fidelities model the fabric (the fluid engine solves the
		// whole queue network since PR 9), so the only clos-specific
		// constraint left is that every swept configuration physically fits.
		if err := s.validateClosCapacity(clos); err != nil {
			return err
		}
	}
	return nil
}

// validateClosCapacity checks that every incast degree the sweep reaches
// fits the worker slots its placement offers — for every aggregator count
// the sweep reaches — so compiled runs cannot panic on an over-full rack.
func (s Spec) validateClosCapacity(clos *Clos) error {
	maxFlows := s.Workload.Flows
	if s.Sweep.Axis == "flows" {
		for _, v := range s.Sweep.Values {
			if f, ok := v.Number(); ok && int(f) > maxFlows {
				maxFlows = int(f)
			}
		}
	}
	for _, n := range s.Sweep.Flows {
		if n > maxFlows {
			maxFlows = n
		}
	}

	maxAggs := clos.Aggregators
	if s.Sweep.Axis == "aggregators" {
		for _, v := range s.Sweep.Values {
			if a, ok := v.Number(); ok && int(a) > maxAggs {
				maxAggs = int(a)
			}
		}
	}
	if maxAggs > clos.Racks {
		return fmt.Errorf("scenario %q: %d aggregators exceed the %d racks (one aggregator per rack, at slot 0)",
			s.Name, maxAggs, clos.Racks)
	}

	placements := []string{clos.Placement}
	if s.Sweep.Axis == "placement" {
		placements = placements[:0]
		for _, v := range s.Sweep.Values {
			if p, ok := v.Str(); ok {
				placements = append(placements, p)
			}
		}
	}
	for _, p := range placements {
		if maxAggs > 1 {
			if err := s.validateMultiAggCapacity(clos, p, maxAggs, maxFlows); err != nil {
				return err
			}
			continue
		}
		var slots int
		var where string
		switch p {
		case "same-rack":
			slots = clos.HostsPerRack - 1
			where = "free slots under the aggregator's leaf (topology.clos.hosts_per_rack - 1)"
		default: // cross-rack
			slots = (clos.Racks - 1) * clos.HostsPerRack
			where = "hosts outside the aggregator's rack ((topology.clos.racks - 1) * topology.clos.hosts_per_rack)"
		}
		if maxFlows > slots {
			return fmt.Errorf("scenario %q: %d workers exceed the %d %s for placement %q",
				s.Name, maxFlows, slots, where, p)
		}
	}
	return nil
}

// validateMultiAggCapacity replays workload.ClosFlowEndpoints' rack-load
// arithmetic in closed form: aggregator k reserves rack k's slot 0 and its
// cross-rack workers round-robin over the other racks starting at rack
// k+1, so the busiest rack's load must fit hosts_per_rack.
func (s Spec) validateMultiAggCapacity(clos *Clos, placement string, aggs, flows int) error {
	if placement == "same-rack" {
		if slots := clos.HostsPerRack - 1; flows > slots {
			return fmt.Errorf("scenario %q: %d workers per aggregator exceed the %d free slots under each aggregator's leaf (topology.clos.hosts_per_rack - 1)",
				s.Name, flows, slots)
		}
		return nil
	}
	load := make([]int, clos.Racks)
	for r := 0; r < aggs; r++ {
		load[r] = 1 // the rack's aggregator at slot 0
	}
	q, rem := flows/(clos.Racks-1), flows%(clos.Racks-1)
	for k := 0; k < aggs; k++ {
		for j := 0; j < clos.Racks-1; j++ {
			r := (k + 1 + j) % clos.Racks
			load[r] += q
			if j < rem {
				load[r]++
			}
		}
	}
	for r, n := range load {
		if n > clos.HostsPerRack {
			return fmt.Errorf("scenario %q: %d aggregators x %d cross-rack workers put %d hosts in rack %d, over topology.clos.hosts_per_rack = %d",
				s.Name, aggs, flows, n, r, clos.HostsPerRack)
		}
	}
	return nil
}

func (w Workload) validate() error {
	if w.Flows < 0 {
		return fmt.Errorf("workload.flows = %d: an incast degree cannot be negative", w.Flows)
	}
	if w.BurstMS < 0 || math.IsNaN(w.BurstMS) || math.IsInf(w.BurstMS, 0) {
		return fmt.Errorf("workload.burst_ms = %v: want a positive duration (or omit for the 15 ms default)", w.BurstMS)
	}
	if w.IntervalMS < 0 || math.IsNaN(w.IntervalMS) || math.IsInf(w.IntervalMS, 0) {
		return fmt.Errorf("workload.interval_ms = %v: want a positive spacing (or omit for the 250 ms default)", w.IntervalMS)
	}
	if w.Bursts < 0 || w.QuickBursts < 0 {
		return fmt.Errorf("workload bursts (%d) and quick_bursts (%d) cannot be negative", w.Bursts, w.QuickBursts)
	}
	if w.JitterUS < 0 || math.IsNaN(w.JitterUS) || math.IsInf(w.JitterUS, 0) {
		return fmt.Errorf("workload.jitter_us = %v: want a non-negative jitter ceiling (or omit for the 100 us default)", w.JitterUS)
	}
	if w.JitterUS > 0 && w.IntervalMS > 0 && w.JitterUS >= w.IntervalMS*1000 {
		return fmt.Errorf("workload.jitter_us = %v must stay below the burst interval (%v ms)", w.JitterUS, w.IntervalMS)
	}
	return nil
}

func (t Topology) validate() error {
	if t.HostLinkGbps < 0 || t.CoreLinkGbps < 0 {
		return fmt.Errorf("topology link rates cannot be negative")
	}
	if t.QueuePackets < 0 || t.ECNThresholdPackets < 0 {
		return fmt.Errorf("topology queue_packets and ecn_threshold_pkts cannot be negative")
	}
	if t.SharedBufferBytes < 0 || t.SharedBufferAlpha < 0 {
		return fmt.Errorf("topology shared buffer parameters cannot be negative")
	}
	if t.ContendBytes < 0 {
		return fmt.Errorf("topology contend_bytes cannot be negative")
	}
	if t.ContendBytes > 0 && t.SharedBufferBytes == 0 {
		return fmt.Errorf("topology contend_bytes requires shared_buffer_bytes (contention lives in the shared memory)")
	}
	if t.Clos != nil {
		if t.CoreLinkGbps > 0 {
			return fmt.Errorf("topology.core_link_gbps is the dumbbell inter-ToR rate; with topology.clos set clos.spine_link_gbps instead")
		}
		if err := t.Clos.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (c Clos) validate() error {
	if c.Racks < 2 {
		return fmt.Errorf("topology.clos.racks = %d: a fabric needs at least 2 racks (drop the clos block for a single-rack dumbbell)", c.Racks)
	}
	if c.HostsPerRack < 2 {
		return fmt.Errorf("topology.clos.hosts_per_rack = %d: need at least 2 (the aggregator plus one worker slot)", c.HostsPerRack)
	}
	if c.Spines < 0 {
		return fmt.Errorf("topology.clos.spines = %d: cannot be negative (omit for the 2-spine default)", c.Spines)
	}
	if c.SpineLinkGbps < 0 || math.IsNaN(c.SpineLinkGbps) || math.IsInf(c.SpineLinkGbps, 0) {
		return fmt.Errorf("topology.clos.spine_link_gbps = %v: want a positive rate", c.SpineLinkGbps)
	}
	if c.Oversubscription < 0 || math.IsNaN(c.Oversubscription) || math.IsInf(c.Oversubscription, 0) {
		return fmt.Errorf("topology.clos.oversubscription = %v: want a positive factor", c.Oversubscription)
	}
	if c.SpineLinkGbps > 0 && c.Oversubscription > 0 {
		return fmt.Errorf("topology.clos.spine_link_gbps and topology.clos.oversubscription both set; they determine each other, pick one")
	}
	if !KnownPlacement(c.Placement) {
		return fmt.Errorf("topology.clos.placement %q is not one of %s (or omit for cross-rack)",
			c.Placement, strings.Join(Placements, ", "))
	}
	if c.Aggregators < 0 {
		return fmt.Errorf("topology.clos.aggregators = %d: cannot be negative (omit for the single aggregator at rack 0)", c.Aggregators)
	}
	return nil
}

func (c CC) validate() error {
	if c.Algorithm != "" && !KnownCC(c.Algorithm) {
		return fmt.Errorf("cc.algorithm %q is not one of %s", c.Algorithm, strings.Join(CCNames, ", "))
	}
	if c.G < 0 || c.G > 1 {
		return fmt.Errorf("cc.g = %v: DCTCP's gain must be in (0, 1]", c.G)
	}
	if c.InitialWindowPkts < 0 {
		return fmt.Errorf("cc.initial_window_pkts cannot be negative")
	}
	return nil
}

func (t Transport) validate() error {
	if t.MinRTOMS < 0 || math.IsNaN(t.MinRTOMS) || math.IsInf(t.MinRTOMS, 0) {
		return fmt.Errorf("transport.min_rto_ms = %v: want a positive timeout", t.MinRTOMS)
	}
	if t.AckEvery < 0 {
		return fmt.Errorf("transport.ack_every cannot be negative")
	}
	return nil
}

func (n Notification) validate() error {
	if n.WindowUS < 0 || math.IsNaN(n.WindowUS) || math.IsInf(n.WindowUS, 0) {
		return fmt.Errorf("notification.window_us = %v: want a positive window (or omit for the 5 us default)", n.WindowUS)
	}
	if n.SlopePackets < 0 || n.BurstArrivals < 0 {
		return fmt.Errorf("notification slope_packets (%d) and burst_arrivals (%d) cannot be negative", n.SlopePackets, n.BurstArrivals)
	}
	if n.CooldownUS < 0 || math.IsNaN(n.CooldownUS) || math.IsInf(n.CooldownUS, 0) {
		return fmt.Errorf("notification.cooldown_us = %v: want a positive cooldown (or omit for the 50 us default)", n.CooldownUS)
	}
	if n.Backoff < 0 || n.Backoff >= 1 || math.IsNaN(n.Backoff) {
		return fmt.Errorf("notification.backoff = %v: the multiplicative factor lives in (0, 1) (or omit for 0.5)", n.Backoff)
	}
	if n.HoldAcks < 0 {
		return fmt.Errorf("notification.hold_acks cannot be negative")
	}
	if n.MinPorts < 0 {
		return fmt.Errorf("notification.min_ports cannot be negative")
	}
	if n.CoordWindowUS < 0 || math.IsNaN(n.CoordWindowUS) || math.IsInf(n.CoordWindowUS, 0) {
		return fmt.Errorf("notification.coord_window_us = %v: want a positive window (or omit for the 20 us default)", n.CoordWindowUS)
	}
	if n.FlowHorizonUS < 0 || math.IsNaN(n.FlowHorizonUS) || math.IsInf(n.FlowHorizonUS, 0) {
		return fmt.Errorf("notification.flow_horizon_us = %v: want a positive horizon (or omit for the 100 us default)", n.FlowHorizonUS)
	}
	return nil
}

func (sw Sweep) validate() error {
	kind, ok := Axes[sw.Axis]
	if !ok {
		names := make([]string, 0, len(Axes))
		for n := range Axes {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("sweep.axis %q is not a known axis; choose one of %s", sw.Axis, strings.Join(names, ", "))
	}
	if len(sw.Values) == 0 {
		return fmt.Errorf("sweep.values is empty: a sweep needs at least one %s value for axis %q", kind, sw.Axis)
	}
	if len(sw.Labels) > 0 && len(sw.Labels) != len(sw.Values) {
		return fmt.Errorf("sweep.labels has %d entries for %d values", len(sw.Labels), len(sw.Values))
	}
	for i, v := range sw.Values {
		if v.Kind() != kind {
			return fmt.Errorf("sweep.values[%d] = %s: axis %q takes %s values", i, v.raw, sw.Axis, kind)
		}
		switch sw.Axis {
		case "flows":
			n, _ := v.Number()
			if n <= 0 || n != math.Trunc(n) {
				return fmt.Errorf("sweep.values[%d] = %v: incast degrees are positive integers", i, n)
			}
		case "g":
			g, _ := v.Number()
			if g <= 0 || g > 1 {
				return fmt.Errorf("sweep.values[%d] = %v: DCTCP's gain must be in (0, 1]", i, g)
			}
		case "ecn_threshold_pkts":
			k, _ := v.Number()
			if k <= 0 || k != math.Trunc(k) {
				return fmt.Errorf("sweep.values[%d] = %v: marking thresholds are positive packet counts", i, k)
			}
		case "min_rto_ms":
			rto, _ := v.Number()
			if rto <= 0 {
				return fmt.Errorf("sweep.values[%d] = %v: min RTO must be positive milliseconds", i, rto)
			}
		case "marking_ewma":
			w, _ := v.Number()
			if w < 0 || w >= 1 {
				return fmt.Errorf("sweep.values[%d] = %v: EWMA weights live in [0, 1)", i, w)
			}
		case "cc":
			name, _ := v.Str()
			if !KnownCC(name) {
				return fmt.Errorf("sweep.values[%d] = %q: not a congestion-control name (%s)", i, name, strings.Join(CCNames, ", "))
			}
		case "scheme":
			name, _ := v.Str()
			if !KnownScheme(name) {
				return fmt.Errorf("sweep.values[%d] = %q: schemes are dctcp, dctcp+guardrail, or dctcp+wave<N>", i, name)
			}
		case "placement":
			name, _ := v.Str()
			if name == "" || !KnownPlacement(name) {
				return fmt.Errorf("sweep.values[%d] = %q: placements are %s", i, name, strings.Join(Placements, " or "))
			}
		case "aggregators":
			a, _ := v.Number()
			if a <= 0 || a != math.Trunc(a) {
				return fmt.Errorf("sweep.values[%d] = %v: aggregator counts are positive integers", i, a)
			}
		}
	}
	for i, n := range sw.Flows {
		if n <= 0 {
			return fmt.Errorf("sweep.flows[%d] = %d: incast degrees are positive", i, n)
		}
	}
	return nil
}

// Load reads and validates a spec file. Unknown fields are rejected, so a
// typo'd key fails loudly instead of silently doing nothing.
func Load(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Parse(b)
}

// Parse decodes and validates a spec from JSON bytes.
func Parse(b []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
