package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// fullSpec exercises every Spec field, so the round-trip test covers the
// whole surface.
func fullSpec() Spec {
	return Spec{
		Name:  "kitchen-sink_1.0",
		Title: "Scenario: everything at once",
		Notes: "multi\nline notes",
		Topology: &Topology{
			HostLinkGbps:        10,
			CoreLinkGbps:        100,
			QueuePackets:        1333,
			ECNThresholdPackets: 65,
			SharedBufferBytes:   2_000_000,
			SharedBufferAlpha:   1,
			ContendBytes:        700_000,
		},
		Workload:  Workload{BurstMS: 2, IntervalMS: 100, Bursts: 12, QuickBursts: 3},
		CC:        &CC{Algorithm: "dctcp", G: 1.0 / 64, InitialWindowPkts: 10},
		Transport: &Transport{MinRTOMS: 10, DelayedAcks: true, AckEvery: 2, IdleRestart: true, ICTCP: true},
		// MinPorts stays zero: coordinated detection needs a clos block,
		// and this spec exercises the dumbbell surface.
		Notification: &Notification{
			WindowUS: 5, SlopePackets: 16, BurstArrivals: 64, CooldownUS: 50,
			Backoff: 0.5, HoldAcks: 4, FlowHorizonUS: 100,
		},
		Sweep: Sweep{
			Axis:   "g",
			Values: Nums(0.5, 0.0625, 0.002),
			Labels: []string{"half", "paper", "tiny"},
			Column: "gain",
			Flows:  []int{80, 500},
		},
		Fidelity: "packet",
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := fullSpec()
	first, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	parsed, err := Parse(first)
	if err != nil {
		t.Fatalf("parse own marshal output: %v", err)
	}
	second, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip is lossy:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

func TestValuePreservesJSONText(t *testing.T) {
	// The raw JSON text must survive unmarshal -> marshal, including
	// number spellings Go would otherwise normalize.
	for _, raw := range []string{`0.002`, `1e-3`, `65`, `true`, `false`, `"dctcp+wave64"`} {
		var v Value
		if err := json.Unmarshal([]byte(raw), &v); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		out, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %s: %v", raw, err)
		}
		if string(out) != raw {
			t.Errorf("value %s round-tripped to %s", raw, out)
		}
	}
}

func TestValueRejectsNonScalars(t *testing.T) {
	for _, raw := range []string{`{}`, `[1]`, `null`} {
		var v Value
		if err := json.Unmarshal([]byte(raw), &v); err == nil {
			t.Errorf("unmarshal %s: want error, got %q", raw, v.String())
		}
	}
	if _, err := json.Marshal(Value{}); err == nil {
		t.Error("marshaling a zero Value: want error")
	}
}

func TestValueKinds(t *testing.T) {
	if k := Num(3).Kind(); k != Number {
		t.Errorf("Num kind = %v", k)
	}
	if k := Flg(true).Kind(); k != Flag {
		t.Errorf("Flg kind = %v", k)
	}
	if k := Str("reno").Kind(); k != Name {
		t.Errorf("Str kind = %v", k)
	}
	if s, ok := Str("reno").Str(); !ok || s != "reno" {
		t.Errorf("Str(\"reno\").Str() = %q, %v", s, ok)
	}
	if f, ok := Num(0.25).Number(); !ok || f != 0.25 {
		t.Errorf("Num(0.25).Number() = %v, %v", f, ok)
	}
	if b, ok := Flg(true).Bool(); !ok || !b {
		t.Errorf("Flg(true).Bool() = %v, %v", b, ok)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name": "x", "workload": {"flows": 10}, "sweeep": {}, "sweep": {"axis": "g", "values": [0.5]}}`))
	if err == nil || !strings.Contains(err.Error(), "sweeep") {
		t.Errorf("typo'd key: want a parse error naming the field, got %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	valid := func() Spec {
		return Spec{
			Name:     "ok",
			Workload: Workload{Flows: 100},
			Sweep:    Sweep{Axis: "g", Values: Nums(0.5)},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of the actionable error
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"bad name", func(s *Spec) { s.Name = "No Spaces!" }, "name must match"},
		{"negative flows", func(s *Spec) { s.Workload.Flows = -3 }, "cannot be negative"},
		{"no flows anywhere", func(s *Spec) { s.Workload.Flows = 0 }, "workload.flows must be a positive incast degree"},
		{"flows twice", func(s *Spec) { s.Sweep.Flows = []int{10} }, "conflicts with the sweep's flow degrees"},
		{"flows axis twice", func(s *Spec) {
			s.Workload.Flows = 0
			s.Sweep = Sweep{Axis: "flows", Values: Nums(10), Flows: []int{10}}
		}, "mutually exclusive"},
		{"unknown axis", func(s *Spec) { s.Sweep.Axis = "mtu" }, "not a known axis"},
		{"empty sweep", func(s *Spec) { s.Sweep.Values = nil }, "sweep.values is empty"},
		{"kind mismatch", func(s *Spec) { s.Sweep.Values = Strs("big") }, "takes number values"},
		{"label arity", func(s *Spec) { s.Sweep.Labels = []string{"a", "b"} }, "2 entries for 1 values"},
		{"gain range", func(s *Spec) { s.Sweep.Values = Nums(1.5) }, "must be in (0, 1]"},
		{"fractional degree", func(s *Spec) { s.Sweep = Sweep{Axis: "flows", Values: Nums(2.5)}; s.Workload.Flows = 0 }, "positive integers"},
		{"unknown cc", func(s *Spec) { s.Sweep = Sweep{Axis: "cc", Values: Strs("cubic")} }, "not a congestion-control name"},
		{"unknown scheme", func(s *Spec) { s.Sweep = Sweep{Axis: "scheme", Values: Strs("dctcp+wave0")} }, "schemes are dctcp"},
		{"cc algorithm", func(s *Spec) { s.CC = &CC{Algorithm: "bbr"} }, "not one of"},
		{"shared buffer without topology", func(s *Spec) {
			s.Sweep = Sweep{Axis: "shared_buffer", Values: Flags(false, true)}
		}, "needs a topology"},
		{"contend without shared", func(s *Spec) { s.Topology = &Topology{ContendBytes: 1} }, "requires shared_buffer_bytes"},
		{"negative rto", func(s *Spec) { s.Transport = &Transport{MinRTOMS: -1} }, "want a positive timeout"},
		{"unknown fidelity", func(s *Spec) { s.Fidelity = "warp" }, "not one of packet, flow"},
		{"negative detector window", func(s *Spec) { s.Notification = &Notification{WindowUS: -1} }, "want a positive window"},
		{"negative slope", func(s *Spec) { s.Notification = &Notification{SlopePackets: -1} }, "cannot be negative"},
		{"backoff range", func(s *Spec) { s.Notification = &Notification{Backoff: 1.5} }, "lives in (0, 1)"},
		{"negative hold_acks", func(s *Spec) { s.Notification = &Notification{HoldAcks: -1} }, "hold_acks cannot be negative"},
		{"negative flow horizon", func(s *Spec) { s.Notification = &Notification{FlowHorizonUS: -5} }, "want a positive horizon"},
		{"notification axis without block", func(s *Spec) {
			s.Sweep = Sweep{Axis: "notification", Values: Flags(false, true)}
		}, "needs a notification block"},
		{"min_ports without clos", func(s *Spec) { s.Notification = &Notification{MinPorts: 2} }, "needs a topology.clos block"},
		{"notification at flow fidelity", func(s *Spec) {
			s.Notification = &Notification{}
			s.Fidelity = "flow"
		}, "cannot model the notification path"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			if err := spec.Validate(); err != nil {
				t.Fatalf("base spec invalid: %v", err)
			}
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("want a validation error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestWaveSize(t *testing.T) {
	for scheme, want := range map[string]int{
		"dctcp":           0,
		"dctcp+guardrail": 0,
		"dctcp+wave64":    64,
		"dctcp+wave8":     8,
	} {
		if got := WaveSize(scheme); got != want {
			t.Errorf("WaveSize(%q) = %d, want %d", scheme, got, want)
		}
		if !KnownScheme(scheme) {
			t.Errorf("KnownScheme(%q) = false", scheme)
		}
	}
}
