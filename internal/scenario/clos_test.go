package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// closSpec is a valid placement sweep on a small fabric, the base every
// rejection case mutates.
func closSpec() Spec {
	return Spec{
		Name: "clos_ok",
		Topology: &Topology{
			Clos: &Clos{Racks: 4, HostsPerRack: 16, Spines: 2, SpineLinkGbps: 100},
		},
		Sweep: Sweep{
			Axis:   "placement",
			Values: Strs("same-rack", "cross-rack"),
			Flows:  []int{8},
		},
	}
}

// TestClosSpecRoundTrip: a clos spec must survive marshal -> Parse ->
// marshal unchanged, so registered experiments are expressible as the
// files `incastsim -scenario` accepts.
func TestClosSpecRoundTrip(t *testing.T) {
	spec := closSpec()
	spec.Topology.Clos.ECMPSeed = 7
	spec.Topology.Clos.Placement = "cross-rack"
	spec.Sweep = Sweep{Axis: "flows", Values: Nums(8, 24)}
	first, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	parsed, err := Parse(first)
	if err != nil {
		t.Fatalf("parse own marshal output: %v", err)
	}
	second, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip is lossy:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestClosParseRejectsUnknownFields: typo'd keys inside the clos block
// fail loudly like everywhere else in the spec.
func TestClosParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name": "x", "workload": {"flows": 4},
		"topology": {"clos": {"racks": 2, "hosts_per_rack": 8, "spinez": 3}},
		"sweep": {"axis": "flows", "values": [4]}}`))
	if err == nil || !strings.Contains(err.Error(), "spinez") {
		t.Errorf("typo'd clos key: want a parse error naming the field, got %v", err)
	}
}

func TestClosValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of the actionable error
	}{
		{"one rack", func(s *Spec) { s.Topology.Clos.Racks = 1 }, "at least 2 racks"},
		{"one host per rack", func(s *Spec) { s.Topology.Clos.HostsPerRack = 1 }, "at least 2 (the aggregator plus one worker slot)"},
		{"negative spines", func(s *Spec) { s.Topology.Clos.Spines = -1 }, "cannot be negative"},
		{"bad spine rate", func(s *Spec) { s.Topology.Clos.SpineLinkGbps = -40 }, "want a positive rate"},
		{"bad oversubscription", func(s *Spec) {
			s.Topology.Clos.SpineLinkGbps = 0
			s.Topology.Clos.Oversubscription = -2
		}, "want a positive factor"},
		{"rate and oversubscription", func(s *Spec) { s.Topology.Clos.Oversubscription = 4 }, "they determine each other, pick one"},
		{"unknown placement", func(s *Spec) { s.Topology.Clos.Placement = "same-host" }, "is not one of cross-rack, same-rack"},
		{"core rate with clos", func(s *Spec) { s.Topology.CoreLinkGbps = 100 }, "set clos.spine_link_gbps instead"},
		{"placement axis without clos", func(s *Spec) { s.Topology.Clos = nil }, "needs a topology.clos block"},
		{"unknown placement value", func(s *Spec) { s.Sweep.Values = Strs("cross-rack", "same-row") }, "placements are cross-rack or same-rack"},
		{"same-rack overflow", func(s *Spec) { s.Sweep.Flows = []int{16} }, "free slots under the aggregator's leaf"},
		{"cross-rack overflow", func(s *Spec) {
			s.Sweep = Sweep{Axis: "flows", Values: Nums(50)}
			s.Topology.Clos.Placement = "cross-rack"
		}, "hosts outside the aggregator's rack"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := closSpec()
			if err := spec.Validate(); err != nil {
				t.Fatalf("base spec invalid: %v", err)
			}
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("want a validation error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestClosFlowFidelityAccepted: since the fluid engine solves the whole
// queue network (PR 9), fidelity "flow" + topology.clos is a legal spec;
// capacity checks still apply.
func TestClosFlowFidelityAccepted(t *testing.T) {
	spec := closSpec()
	spec.Fidelity = "flow"
	if err := spec.Validate(); err != nil {
		t.Errorf("fidelity flow + clos rejected: %v", err)
	}
	spec.Sweep.Flows = []int{16} // over the 15 same-rack slots
	if err := spec.Validate(); err == nil {
		t.Error("capacity overflow accepted at flow fidelity")
	}
}

// TestClosAggregators: the aggregators knob and axis validate — counts must
// be positive integers within the rack count, and per-rack load (including
// each rack's reserved slot-0 aggregator) must fit hosts_per_rack.
func TestClosAggregators(t *testing.T) {
	spec := closSpec()
	spec.Topology.Clos.Aggregators = 4
	if err := spec.Validate(); err != nil {
		t.Errorf("4 aggregators on 4 racks rejected: %v", err)
	}
	spec.Topology.Clos.Aggregators = 5
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "exceed the 4 racks") {
		t.Errorf("5 aggregators on 4 racks: want rack-count error, got %v", err)
	}
	spec.Topology.Clos.Aggregators = -1
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "cannot be negative") {
		t.Errorf("negative aggregators: want error, got %v", err)
	}

	// 4 racks x 16 hosts, 4 aggregators: each rack holds 1 aggregator +
	// 3 aggregators' worth of its share of workers. 20 workers/agg spread
	// over 3 remote racks = 7+7+6, so the busiest rack holds 1+7+7+6 = 21
	// hosts > 16.
	over := closSpec()
	over.Sweep = Sweep{Axis: "aggregators", Values: Nums(1, 4)}
	over.Workload.Flows = 20
	if err := over.Validate(); err == nil || !strings.Contains(err.Error(), "hosts_per_rack") {
		t.Errorf("overloaded multi-aggregator fabric: want rack-load error, got %v", err)
	}
	over.Workload.Flows = 15
	if err := over.Validate(); err != nil {
		t.Errorf("15 workers x 4 aggregators (load 16/rack) rejected: %v", err)
	}
	noClos := closSpec()
	noClos.Topology.Clos = nil
	noClos.Sweep = Sweep{Axis: "aggregators", Values: Nums(2), Flows: []int{8}}
	if err := noClos.Validate(); err == nil || !strings.Contains(err.Error(), "topology.clos") {
		t.Errorf("aggregators axis without clos: want error naming topology.clos, got %v", err)
	}
}

// TestNotificationFlowFidelityErrorNamesKnobs: the notification path stays
// packet-only; the rejection must name both knobs — the fidelity value and
// the notification block — so a user knows which of the two to change.
func TestNotificationFlowFidelityErrorNamesKnobs(t *testing.T) {
	spec := closSpec()
	spec.Fidelity = "flow"
	spec.Notification = &Notification{}
	err := spec.Validate()
	if err == nil {
		t.Fatal("fidelity flow + notification validated")
	}
	for _, field := range []string{`fidelity "flow"`, "notification"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("error %q does not name %s", err, field)
		}
	}
}

// TestClosCapacityAcceptsBoundary: degrees exactly at the slot limits are
// legal for both placements.
func TestClosCapacityAcceptsBoundary(t *testing.T) {
	spec := closSpec()
	// 16 hosts per rack: 15 same-rack slots, 48 cross-rack slots.
	spec.Sweep.Flows = []int{15}
	if err := spec.Validate(); err != nil {
		t.Errorf("15 workers on a 16-host rack rejected: %v", err)
	}
	cross := closSpec()
	cross.Sweep = Sweep{Axis: "flows", Values: Nums(48)}
	cross.Topology.Clos.Placement = "cross-rack"
	if err := cross.Validate(); err != nil {
		t.Errorf("48 cross-rack workers on 3 remote racks rejected: %v", err)
	}
}
