#!/usr/bin/env bash
# ci.sh — the full verification gate for incastlab.
#
# Runs, in order:
#   1. go vet            static checks across every package
#   2. go build          everything compiles, commands included
#   3. go test           the full unit + determinism suite
#   4. go test -race     the parallel orchestration tests under the race
#                        detector (worker pool + experiment fan-out)
#   5. audit gate        quick Fig-5/Fig-8 experiments re-run in checked
#                        mode (every simulation invariant enforced, zero
#                        violations tolerated) plus the rackmodel<->netsim
#                        differential cross-check at the documented
#                        tolerances (see EXPERIMENTS.md)
#   6. obs gate          quick Fig-5 run three ways (no metrics; metrics
#                        serial; metrics parallel): CSV artifacts must be
#                        bit-identical across all three, both snapshots
#                        must parse and carry the key metric families, and
#                        their deterministic subsets must be byte-equal
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/core -run TestParallel"
go test -race ./internal/core -run TestParallel

echo "==> audit gate: invariant-checked experiments + rackmodel/netsim differential"
go test ./internal/audit -count=1
go test ./internal/core -run 'TestAudited' -count=1

echo "==> obs gate: metrics must not perturb results; serial == parallel snapshots"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
go run ./cmd/figures -quick -only fig5 -workers 1 -out "$OBS_TMP/base"
go run ./cmd/figures -quick -only fig5 -workers 1 -metrics "$OBS_TMP/m1.json" -out "$OBS_TMP/serial"
go run ./cmd/figures -quick -only fig5 -workers 4 -metrics "$OBS_TMP/m2.json" -out "$OBS_TMP/parallel"
for f in "$OBS_TMP"/base/fig5*.csv; do
  name="$(basename "$f")"
  cmp "$f" "$OBS_TMP/serial/$name"    # instrumented == uninstrumented
  cmp "$f" "$OBS_TMP/parallel/$name"  # parallel == serial
done
go run ./internal/obs/snapcheck \
  -require runs,sim_events_executed,sim_time_ns,net_queue_enqueued_packets,net_link_tx_bytes,net_pool_gets,tcp_sent_packets,cc_cwnd_updates,burst_bct_ms \
  "$OBS_TMP/m1.json"
go run ./internal/obs/snapcheck -diff "$OBS_TMP/m1.json" "$OBS_TMP/m2.json"

echo "==> ci.sh: all checks passed"
