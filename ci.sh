#!/usr/bin/env bash
# ci.sh — the full verification gate for incastlab.
#
# Runs, in order:
#   1. go vet            static checks across every package
#   2. go build          everything compiles, commands included
#   3. go test           the full unit + determinism suite
#   4. go test -race     the parallel orchestration tests under the race
#                        detector (worker pool + experiment fan-out)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/core -run TestParallel"
go test -race ./internal/core -run TestParallel

echo "==> ci.sh: all checks passed"
