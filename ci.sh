#!/usr/bin/env bash
# ci.sh — the full verification gate for incastlab.
#
# Runs, in order:
#   1. go vet            static checks across every package
#   2. go build          everything compiles, commands included
#   3. go test           the full unit + determinism suite
#   4. go test -race     the parallel orchestration tests under the race
#                        detector (worker pool + experiment fan-out)
#   5. audit gate        quick Fig-5/Fig-8 experiments re-run in checked
#                        mode (every simulation invariant enforced, zero
#                        violations tolerated) plus the three-way
#                        rackmodel<->flowsim<->netsim differential
#                        cross-check on the canonical trace, the
#                        closed-loop packet<->flow incast gate (mode
#                        classification exact, BCT/peak-queue within the
#                        documented tolerances; see EXPERIMENTS.md), and
#                        the fabric closed-loop gate: the ext_clos_crossrack
#                        operating points run packet vs multi-queue fluid
#                        under the same pinned tolerance contract
#                        (TestClosDifferentialGate), and the cohort
#                        differential gate: Fig-5 + Clos points run
#                        per-flow vs cohort-aggregated on the fluid
#                        backend under tighter-still tolerances
#                        (TestCohortDifferentialGate)
#   6. obs gate          quick Fig-5 run three ways (no metrics; metrics
#                        serial; metrics parallel): CSV artifacts must be
#                        bit-identical across all three, both snapshots
#                        must parse and carry the key metric families, and
#                        their deterministic subsets must be byte-equal
#   7. registry gate     `figures -list` must match the checked-in golden
#                        name list, an unknown -only name must exit
#                        non-zero, and the quick CSVs (fig5, fig6,
#                        ablation_g, ablation_marking, both Clos sweeps,
#                        and both notification experiments) must be
#                        byte-identical to the checked-in goldens
#                        (scheduler and pooling changes are
#                        behavior-preserving); the two Clos sweeps then
#                        re-run at -fidelity flow against their own
#                        checked-in goldens (testdata/quick_flow), pinning
#                        the multi-queue fluid solver's output bit for bit
#   8. sweep-cache gate  the Clos cross-rack example sweep runs cold,
#                        sharded across two worker processes against a
#                        shared content-addressed cache, then again as a
#                        warm resume: the resume must be all cache hits
#                        and its CSV byte-identical to the cold run; the
#                        1,000-point flow-fidelity RTO grid then shards
#                        across four processes and warm-assembles the
#                        same way (resumable 1k-point studies work); the
#                        million-flow Clos grid (208 rows, 1.26M flows
#                        summed, fidelity flow) does the same cold/warm
#                        byte-identity dance through the sharded cache
#   9. scenario gate     example specs run end to end through
#                        `incastsim -scenario` and produce their CSVs —
#                        one packet-level, one at flow fidelity (a
#                        10,000-flow sweep only the fluid backend can
#                        turn around), one with the notification block
#                        and its sweep axis, and the single-run
#                        million-flow Clos scenario (1,048,576 flows in
#                        ONE cohort-aggregated row, no shard cache) under
#                        a wall-clock sanity bound; a bogus spec path, a
#                        malformed -shard spec, and a bogus -aggregation
#                        level must exit non-zero
#  10. bench gate        the substrate micro-benchmarks and the flow-level
#                        Fig-5 sweep smoke-run at one iteration each (they
#                        must at least execute); with CI_BENCH=1 the macro
#                        + micro benchmarks run for real and refresh the
#                        "current" sections of BENCH_PR5.json,
#                        BENCH_PR6.json (packet vs flow fidelity on the
#                        same Fig-5 sweep), BENCH_PR9.json (packet vs
#                        flow on the two Clos fabric sweeps), and
#                        BENCH_PR10.json (per-flow vs cohort-aggregated
#                        fluid on the 1400-degree Fig-5 point, plus the
#                        single-run million-flow Clos scenario) via
#                        internal/bench/benchjson
set -euo pipefail
cd "$(dirname "$0")"

echo "==> gofmt -l"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
  echo "gofmt needed on:" >&2
  echo "$UNFORMATTED" >&2
  exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/core -run TestParallel"
go test -race ./internal/core -run TestParallel

echo "==> audit gate: invariant-checked experiments + rackmodel/netsim differential"
go test ./internal/audit -count=1
go test ./internal/core -run 'TestAudited' -count=1

echo "==> obs gate: metrics must not perturb results; serial == parallel snapshots"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
go run ./cmd/figures -quick -only fig5 -workers 1 -out "$OBS_TMP/base"
go run ./cmd/figures -quick -only fig5 -workers 1 -metrics "$OBS_TMP/m1.json" -out "$OBS_TMP/serial"
go run ./cmd/figures -quick -only fig5 -workers 4 -metrics "$OBS_TMP/m2.json" -out "$OBS_TMP/parallel"
for f in "$OBS_TMP"/base/fig5*.csv; do
  name="$(basename "$f")"
  cmp "$f" "$OBS_TMP/serial/$name"    # instrumented == uninstrumented
  cmp "$f" "$OBS_TMP/parallel/$name"  # parallel == serial
done
go run ./internal/obs/snapcheck \
  -require runs,sim_events_executed,sim_time_ns,net_queue_enqueued_packets,net_link_tx_bytes,net_pool_gets,tcp_sent_packets,cc_cwnd_updates,burst_bct_ms \
  "$OBS_TMP/m1.json"
go run ./internal/obs/snapcheck -diff "$OBS_TMP/m1.json" "$OBS_TMP/m2.json"

echo "==> registry gate: -list golden, unknown -only rejection, quick CSV goldens"
go run ./cmd/figures -list | diff -u internal/core/testdata/registry_names.golden -
if go run ./cmd/figures -only bogus -out "$OBS_TMP/bogus" 2>/dev/null; then
  echo "figures -only bogus should have exited non-zero" >&2
  exit 1
fi
go run ./cmd/figures -quick -only fig5,fig6,ablation_g,ablation_marking,ext_clos_crossrack,ext_clos_multiagg,ext_pulser_modes,ext_distributed_detect -out "$OBS_TMP/golden"
for f in internal/core/testdata/quick/*.csv; do
  cmp "$f" "$OBS_TMP/golden/$(basename "$f")"
done
go run ./cmd/figures -quick -only ext_clos_crossrack,ext_clos_multiagg -fidelity flow -out "$OBS_TMP/golden_flow"
for f in internal/core/testdata/quick_flow/*.csv; do
  cmp "$f" "$OBS_TMP/golden_flow/$(basename "$f")"
done

echo "==> sweep-cache gate: sharded cold run, then warm resume, byte-identical"
go build -o "$OBS_TMP/incastsim" ./cmd/incastsim
"$OBS_TMP/incastsim" -scenario examples/scenarios/clos_crossrack.json -quick \
  -cache "$OBS_TMP/sweep.cache" -shard-procs 2 -out "$OBS_TMP/sweep_cold" >"$OBS_TMP/sweep_cold.log"
grep -q '^cache: 4 rows, 4 hits, 0 computed, 0 skipped$' "$OBS_TMP/sweep_cold.log"
"$OBS_TMP/incastsim" -scenario examples/scenarios/clos_crossrack.json -quick \
  -cache "$OBS_TMP/sweep.cache" -out "$OBS_TMP/sweep_warm" >"$OBS_TMP/sweep_warm.log"
grep -q '^cache: 4 rows, 4 hits, 0 computed, 0 skipped$' "$OBS_TMP/sweep_warm.log"
cmp "$OBS_TMP/sweep_cold/clos_crossrack.csv" "$OBS_TMP/sweep_warm/clos_crossrack.csv"
"$OBS_TMP/incastsim" -scenario examples/scenarios/fanin_rto_grid_flow.json -quick \
  -cache "$OBS_TMP/grid.cache" -shard-procs 4 -out "$OBS_TMP/grid_cold" >"$OBS_TMP/grid_cold.log"
grep -q '^cache: 1000 rows, 1000 hits, 0 computed, 0 skipped$' "$OBS_TMP/grid_cold.log"
"$OBS_TMP/incastsim" -scenario examples/scenarios/fanin_rto_grid_flow.json -quick \
  -cache "$OBS_TMP/grid.cache" -out "$OBS_TMP/grid_warm" >"$OBS_TMP/grid_warm.log"
cmp "$OBS_TMP/grid_cold/fanin_rto_grid_flow.csv" "$OBS_TMP/grid_warm/fanin_rto_grid_flow.csv"
"$OBS_TMP/incastsim" -scenario examples/scenarios/clos_million_flow_grid.json -quick \
  -cache "$OBS_TMP/mfg.cache" -shard-procs 4 -out "$OBS_TMP/mfg_cold" >"$OBS_TMP/mfg_cold.log"
grep -q '^cache: 208 rows, 208 hits, 0 computed, 0 skipped$' "$OBS_TMP/mfg_cold.log"
"$OBS_TMP/incastsim" -scenario examples/scenarios/clos_million_flow_grid.json -quick \
  -cache "$OBS_TMP/mfg.cache" -out "$OBS_TMP/mfg_warm" >"$OBS_TMP/mfg_warm.log"
grep -q '^cache: 208 rows, 208 hits, 0 computed, 0 skipped$' "$OBS_TMP/mfg_warm.log"
cmp "$OBS_TMP/mfg_cold/clos_million_flow_grid.csv" "$OBS_TMP/mfg_warm/clos_million_flow_grid.csv"

echo "==> scenario gate: example specs end to end; bad spec path rejected"
go run ./cmd/incastsim -scenario examples/scenarios/ml_periodic_bursts.json -quick -out "$OBS_TMP/scenario" >/dev/null
test -s "$OBS_TMP/scenario/ml_periodic_bursts.csv"
go run ./cmd/incastsim -scenario examples/scenarios/fanin_scaling_flow.json -quick -out "$OBS_TMP/scenario" >/dev/null
test -s "$OBS_TMP/scenario/fanin_scaling_flow.csv"
go run ./cmd/incastsim -scenario examples/scenarios/pulser_fanin.json -quick -out "$OBS_TMP/scenario" >/dev/null
test -s "$OBS_TMP/scenario/pulser_fanin.csv"
# The headline single-run million-flow scenario: 1,048,576 flows in one
# cohort-aggregated row. The timeout is the wall-clock sanity bound — the
# run takes ~3 s; if it regresses past 60 s the aggregation is broken.
timeout 60 "$OBS_TMP/incastsim" -scenario examples/scenarios/clos_million_flow_single.json \
  -quick -out "$OBS_TMP/scenario" >/dev/null
test -s "$OBS_TMP/scenario/clos_million_flow_single.csv"
if go run ./cmd/incastsim -scenario "$OBS_TMP/no_such_spec.json" 2>/dev/null; then
  echo "incastsim -scenario with a missing file should have exited non-zero" >&2
  exit 1
fi
if go run ./cmd/incastsim -flows 8 -shard 0/0 2>/dev/null; then
  echo "incastsim -shard 0/0 should have exited non-zero" >&2
  exit 1
fi
if go run ./cmd/incastsim -flows 8 -fidelity flow -aggregation bogus 2>/dev/null; then
  echo "incastsim -aggregation bogus should have exited non-zero" >&2
  exit 1
fi
if go run ./cmd/incastsim -flows 8 -aggregation cohort 2>/dev/null; then
  echo "incastsim -aggregation without -fidelity flow should have exited non-zero" >&2
  exit 1
fi

echo "==> bench gate: substrate micro-benchmarks + flow fast path smoke-run"
go test -run '^$' \
  -bench '^(BenchmarkSimulatorPacketRate|BenchmarkMillisamplerAnalyze|BenchmarkPredictorObserve|BenchmarkFlowsimFig5|BenchmarkFlowsimCohortFig5|BenchmarkFlowsimPerFlowFig5Point|BenchmarkFlowsimCohortFig5Point|BenchmarkClosMillionFlowSingleRun)$' \
  -benchtime=1x -benchmem . >"$OBS_TMP/bench_smoke.txt"
grep -q '^BenchmarkSimulatorPacketRate' "$OBS_TMP/bench_smoke.txt"
grep -q '^BenchmarkFlowsimFig5' "$OBS_TMP/bench_smoke.txt"
grep -q '^BenchmarkFlowsimCohortFig5Point' "$OBS_TMP/bench_smoke.txt"
grep -q '^BenchmarkClosMillionFlowSingleRun' "$OBS_TMP/bench_smoke.txt"
if [ "${CI_BENCH:-0}" = "1" ]; then
  echo "==> bench gate: full run refreshing BENCH_PR5.json (CI_BENCH=1)"
  go test -run '^$' \
    -bench '^(BenchmarkFig5DCTCPModes|BenchmarkExtModeBoundary|BenchmarkSimulatorPacketRate)$' \
    -benchtime=3x -benchmem . >"$OBS_TMP/bench_full.txt"
  go test -run '^$' \
    -bench '^(BenchmarkMillisamplerAnalyze|BenchmarkPredictorObserve)$' \
    -benchtime=1s -benchmem . >>"$OBS_TMP/bench_full.txt"
  go run ./internal/bench/benchjson -label current \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -out BENCH_PR5.json <"$OBS_TMP/bench_full.txt"
  echo "==> bench gate: packet vs flow Fig-5 sweep refreshing BENCH_PR6.json (CI_BENCH=1)"
  go test -run '^$' -bench '^BenchmarkFig5DCTCPModes$' \
    -benchtime=3x -benchmem . >"$OBS_TMP/bench_pr6_base.txt"
  go test -run '^$' -bench '^BenchmarkFlowsimFig5$' \
    -benchtime=3x -benchmem . >"$OBS_TMP/bench_pr6_cur.txt"
  go run ./internal/bench/benchjson -label baseline \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -note "packet-level netsim reference: quick Fig-5 DCTCP sweep (n=80/500/1400, 4 bursts)" \
    -out BENCH_PR6.json <"$OBS_TMP/bench_pr6_base.txt"
  go run ./internal/bench/benchjson -label current \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -note "flow-level fluid engine: same sweep at fidelity=flow; mode classification pinned by TestIncastDifferentialGate" \
    -out BENCH_PR6.json <"$OBS_TMP/bench_pr6_cur.txt"
  echo "==> bench gate: packet vs flow Clos sweeps refreshing BENCH_PR9.json (CI_BENCH=1)"
  go test -run '^$' -bench '^(BenchmarkClosCrossRackPacket|BenchmarkClosMultiAggPacket)$' \
    -benchtime=3x -benchmem . >"$OBS_TMP/bench_pr9_base.txt"
  go test -run '^$' -bench '^(BenchmarkClosCrossRackFlow|BenchmarkClosMultiAggFlow)$' \
    -benchtime=3x -benchmem . >"$OBS_TMP/bench_pr9_cur.txt"
  go run ./internal/bench/benchjson -label baseline \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -note "packet-level netsim reference: quick ext_clos_crossrack + ext_clos_multiagg fabric sweeps (8 racks, 2 ECMP spines)" \
    -out BENCH_PR9.json <"$OBS_TMP/bench_pr9_base.txt"
  go run ./internal/bench/benchjson -label current \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -note "multi-queue fluid solver: same sweeps at fidelity=flow; agreement pinned by TestClosDifferentialGate" \
    -out BENCH_PR9.json <"$OBS_TMP/bench_pr9_cur.txt"
  echo "==> bench gate: per-flow vs cohort fluid refreshing BENCH_PR10.json (CI_BENCH=1)"
  go test -run '^$' -bench '^BenchmarkFlowsimPerFlowFig5Point$' \
    -benchtime=30x -benchmem . >"$OBS_TMP/bench_pr10_base.txt"
  go test -run '^$' -bench '^(BenchmarkFlowsimCohortFig5Point|BenchmarkFlowsimCohortFig5|BenchmarkClosMillionFlowSingleRun)$' \
    -benchtime=3x -benchmem . >"$OBS_TMP/bench_pr10_cur.txt"
  go run ./internal/bench/benchjson -label baseline \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -note "per-flow fluid reference: 1400-degree Fig-5 point, one record per flow" \
    -out BENCH_PR10.json <"$OBS_TMP/bench_pr10_base.txt"
  go run ./internal/bench/benchjson -label current \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -note "cohort-aggregated fluid: same 1400-degree point, the cohort Fig-5 sweep, and the single-run 1,048,576-flow Clos scenario; agreement pinned by TestCohortDifferentialGate" \
    -out BENCH_PR10.json <"$OBS_TMP/bench_pr10_cur.txt"
fi

echo "==> ci.sh: all checks passed"
