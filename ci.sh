#!/usr/bin/env bash
# ci.sh — the full verification gate for incastlab.
#
# Runs, in order:
#   1. go vet            static checks across every package
#   2. go build          everything compiles, commands included
#   3. go test           the full unit + determinism suite
#   4. go test -race     the parallel orchestration tests under the race
#                        detector (worker pool + experiment fan-out)
#   5. audit gate        quick Fig-5/Fig-8 experiments re-run in checked
#                        mode (every simulation invariant enforced, zero
#                        violations tolerated) plus the rackmodel<->netsim
#                        differential cross-check at the documented
#                        tolerances (see EXPERIMENTS.md)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/core -run TestParallel"
go test -race ./internal/core -run TestParallel

echo "==> audit gate: invariant-checked experiments + rackmodel/netsim differential"
go test ./internal/audit -count=1
go test ./internal/core -run 'TestAudited' -count=1

echo "==> ci.sh: all checks passed"
